"""Runtime shape/dtype/sparsity contracts for distributed kernels.

Every kernel that runs on workers declares the shapes it expects::

    @contract(block="matrix (b, D)", mean="dense (D,)",
              projector="dense (D, d)", ret="dense (b, d)")
    def block_latent(block, mean, projector, ...): ...

A spec is ``[kind] [shape]``:

- *kind* is one of ``matrix`` (sparse or dense, 2-D), ``dense`` (not sparse),
  ``sparse`` (scipy sparse), ``scalar`` (a real number), ``int``, ``any``;
- *shape* is a parenthesized dimension tuple; each dimension is an integer
  literal or a symbol.  Symbols unify across all arguments and the return
  value of one call, so ``block="(b, D)"``/``mean="(D,)"`` asserts that the
  mean's length equals the block's column count -- exactly the invariant the
  paper's mean-propagation algebra (Section 3.1) relies on.

Checks run only when enabled (the ``REPRO_CHECK_CONTRACTS`` environment
variable, :func:`enable`, or the :func:`checked` context manager); when
disabled, a contracted call costs one boolean test.  The static analyzer
cross-checks the same declarations against call sites with literal
dimensions (rule CT001 in :mod:`repro.lint.visitors`).
"""

from __future__ import annotations

import functools
import inspect
import numbers
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, TypeVar

from repro.errors import ContractViolationError

F = TypeVar("F", bound=Callable[..., Any])

_KINDS = ("matrix", "dense", "sparse", "scalar", "int", "any")

_SPEC_RE = re.compile(
    r"^\s*(?P<kind>[a-z]+)?\s*(?:\((?P<dims>[^)]*)\))?\s*$"
)
_DIM_RE = re.compile(r"^(?:(?P<int>\d+)|(?P<sym>[A-Za-z_][A-Za-z0-9_]*))$")


@dataclass(frozen=True)
class Spec:
    """Parsed contract spec: a kind plus an optional symbolic shape."""

    kind: str
    dims: tuple[int | str, ...] | None
    text: str

    def __str__(self) -> str:
        return self.text


def parse_spec(text: str) -> Spec:
    """Parse ``"matrix (b, D)"`` / ``"dense (D,)"`` / ``"scalar"`` etc."""
    match = _SPEC_RE.match(text)
    if match is None:
        raise ValueError(f"malformed contract spec {text!r}")
    kind = match.group("kind") or "any"
    if kind not in _KINDS:
        raise ValueError(
            f"unknown contract kind {kind!r} in {text!r}; expected one of {_KINDS}"
        )
    dims_text = match.group("dims")
    if dims_text is None:
        if kind == "any" and not text.strip():
            raise ValueError(f"empty contract spec {text!r}")
        return Spec(kind, None, text.strip())
    dims: list[int | str] = []
    for piece in dims_text.split(","):
        piece = piece.strip()
        if not piece:
            continue  # trailing comma of 1-tuples: "(D,)"
        dim_match = _DIM_RE.match(piece)
        if dim_match is None:
            raise ValueError(f"malformed dimension {piece!r} in contract spec {text!r}")
        if dim_match.group("int") is not None:
            dims.append(int(dim_match.group("int")))
        else:
            dims.append(dim_match.group("sym"))
    return Spec(kind, tuple(dims), text.strip())


# ---------------------------------------------------------------------------
# enable / disable


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CHECK_CONTRACTS", "").strip().lower() in {
        "1",
        "true",
        "yes",
        "on",
    }


_enabled: bool = _env_enabled()


def enable() -> None:
    """Turn runtime contract checking on (process-wide)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn runtime contract checking off (the default)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


@contextmanager
def checked(on: bool = True) -> Iterator[None]:
    """Context manager scoping the enabled flag: ``with checked(): ...``."""
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous


# ---------------------------------------------------------------------------
# runtime checking


def _is_sparse(value: Any) -> bool:
    # Duck-typed so the hot disabled path never imports scipy here.
    return hasattr(value, "tocsr") and hasattr(value, "nnz")


def _shape_of(value: Any) -> tuple[int, ...] | None:
    shape = getattr(value, "shape", None)
    if shape is not None:
        return tuple(int(dim) for dim in shape)
    if isinstance(value, numbers.Number):
        return ()
    if isinstance(value, (list, tuple)):
        import numpy as np

        try:
            return tuple(np.shape(value))
        except ValueError:
            return None
    return None


def _check_kind(spec: Spec, value: Any) -> str | None:
    """Return an error string when *value* fails the spec's kind, else None."""
    if spec.kind == "any":
        return None
    if spec.kind == "sparse":
        return None if _is_sparse(value) else "expected a scipy sparse matrix"
    if spec.kind == "dense":
        return "expected a dense (non-sparse) array" if _is_sparse(value) else None
    if spec.kind == "matrix":
        shape = _shape_of(value)
        if shape is None or len(shape) != 2:
            return "expected a 2-D matrix (sparse or dense)"
        return None
    if spec.kind == "scalar":
        if isinstance(value, numbers.Real) and not hasattr(value, "__len__"):
            return None
        shape = getattr(value, "shape", None)
        if shape == ():
            return None
        return "expected a real scalar"
    if spec.kind == "int":
        if isinstance(value, numbers.Integral):
            return None
        return "expected an integer"
    return None


def _check_value(
    qualname: str,
    label: str,
    spec: Spec,
    value: Any,
    bindings: dict[str, tuple[int, str]],
) -> None:
    if value is None:
        return  # optional argument left at None: unchecked by design
    kind_error = _check_kind(spec, value)
    if kind_error is not None:
        raise ContractViolationError(
            f"{qualname}: {label} violates contract {spec!s}: {kind_error} "
            f"(got {type(value).__name__})"
        )
    if spec.dims is None:
        return
    shape = _shape_of(value)
    if shape is None or len(shape) != len(spec.dims):
        raise ContractViolationError(
            f"{qualname}: {label} violates contract {spec!s}: expected "
            f"{len(spec.dims)} dimension(s), got shape {shape}"
        )
    for dim, actual in zip(spec.dims, shape):
        if isinstance(dim, int):
            if dim != actual:
                raise ContractViolationError(
                    f"{qualname}: {label} violates contract {spec!s}: dimension "
                    f"{actual} where {dim} is required (shape {shape})"
                )
            continue
        bound = bindings.get(dim)
        if bound is None:
            bindings[dim] = (actual, label)
        elif bound[0] != actual:
            raise ContractViolationError(
                f"{qualname}: {label} binds symbol {dim}={actual} but "
                f"{dim}={bound[0]} was bound by {bound[1]} (shape {shape}, "
                f"contract {spec!s})"
            )


@dataclass(frozen=True)
class Contract:
    """The parsed contract attached to one function."""

    qualname: str
    arg_specs: dict[str, Spec]
    ret_specs: tuple[Spec, ...] | None
    signature: inspect.Signature

    def check_args(self, args: tuple, kwargs: dict) -> dict[str, tuple[int, str]]:
        bindings: dict[str, tuple[int, str]] = {}
        bound = self.signature.bind_partial(*args, **kwargs)
        for name, spec in self.arg_specs.items():
            if name in bound.arguments:
                _check_value(
                    self.qualname, f"argument {name!r}", spec, bound.arguments[name], bindings
                )
        return bindings

    def check_return(self, result: Any, bindings: dict[str, tuple[int, str]]) -> None:
        if self.ret_specs is None:
            return
        if len(self.ret_specs) == 1:
            values: tuple = (result,)
        else:
            if not isinstance(result, tuple) or len(result) != len(self.ret_specs):
                raise ContractViolationError(
                    f"{self.qualname}: return value violates contract: expected a "
                    f"{len(self.ret_specs)}-tuple, got {type(result).__name__}"
                )
            values = result
        for index, (spec, value) in enumerate(zip(self.ret_specs, values)):
            label = "return value" if len(values) == 1 else f"return value [{index}]"
            _check_value(self.qualname, label, spec, value, bindings)


# Registry of every contracted function, keyed by qualified name.
REGISTRY: dict[str, Contract] = {}


def contract(ret: str | tuple[str, ...] | None = None, **arg_specs: str) -> Callable[[F], F]:
    """Declare shape/kind contracts for a kernel's arguments and return value.

    Args:
        ret: spec for the return value; a tuple of specs for tuple returns.
        **arg_specs: parameter name -> spec string (see module docstring).

    The declarations are registered for static cross-checking (rule CT001)
    and enforced at call time only while contract checking is enabled.
    """
    parsed_args = {name: parse_spec(text) for name, text in arg_specs.items()}
    if ret is None:
        parsed_ret = None
    elif isinstance(ret, str):
        parsed_ret = (parse_spec(ret),)
    else:
        parsed_ret = tuple(parse_spec(text) for text in ret)

    def decorate(fn: F) -> F:
        signature = inspect.signature(fn)
        unknown = set(parsed_args) - set(signature.parameters)
        if unknown:
            raise ValueError(
                f"@contract on {fn.__qualname__}: unknown parameter(s) "
                f"{sorted(unknown)}"
            )
        entry = Contract(fn.__qualname__, parsed_args, parsed_ret, signature)
        REGISTRY[fn.__qualname__] = entry

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _enabled:
                return fn(*args, **kwargs)
            bindings = entry.check_args(args, kwargs)
            result = fn(*args, **kwargs)
            entry.check_return(result, bindings)
            return result

        wrapper.__contract__ = entry  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def registered() -> dict[str, Contract]:
    """Snapshot of every registered contract (for tooling and tests)."""
    return dict(REGISTRY)
