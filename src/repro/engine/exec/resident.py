"""Worker-resident task payloads: pin once, ship a tiny reference after.

An iterative fit dispatches the *same* input split to workers on every job of
every EM iteration.  With ordinary payloads each dispatch re-ships (or at
least re-encodes) the split; with a resident payload the driver **pins** the
split once and every subsequent dispatch carries only a
:class:`ResidentPayloadRef` -- a key, a generation counter, and (for process
pools) the name of one shared-memory segment holding the pickled split.
After iteration 1 the per-dispatch bytes are the small model matrices going
out and the k x k / k x D partials coming back, which is the paper's
intermediate-data argument applied to the driver-worker pipe itself.

Resolution happens in :func:`resolve_payload`, called by the engines at the
top of every stage task:

- in the driver process (``serial``, ``threads``, the process executor's
  inline fallback) the store holds the *original* payload object, so
  resolution returns the identical object and the run stays bitwise equal to
  an unpinned one;
- in a forked worker the store was inherited at fork time, so pins installed
  before the pool was created hit the same way;
- a worker that misses (pool forked before the pin) attaches the ref's shm
  segment, unpickles the blob once, and caches the result for the worker's
  lifetime.

The *generation* counter guards against key reuse: a ref minted for a
previous pin of the same key never resolves against a newer store entry.
"""

from __future__ import annotations

import itertools
import pickle
import threading
from dataclasses import dataclass
from typing import Any

from repro.engine.exec.shm import _attach, decode_payload
from repro.errors import EngineError


@dataclass(frozen=True)
class ResidentPayloadRef:
    """A picklable stand-in for a payload pinned in the worker-resident store.

    Attributes:
        key: the pin's store key (unique per dataset split per pin call).
        generation: monotonic pin counter; a store entry only satisfies a
            ref minted for the same generation.
        segment: name of the shared-memory segment holding the pickled
            payload, or None for in-process executors (driver store only).
        nbytes: length of the pickled blob inside the segment.
    """

    key: str
    generation: int
    segment: str | None = None
    nbytes: int = 0


_LOCK = threading.Lock()
# key -> (generation, payload): the store is module-level so forked workers
# inherit the driver's pins and resolve them without touching shared memory.
_STORE: dict[str, tuple[int, Any]] = {}
_GENERATIONS = itertools.count(1)


def next_generation() -> int:
    """A fresh generation number for a new pin."""
    return next(_GENERATIONS)


def install(key: str, generation: int, payload: Any) -> None:
    """Install *payload* under *key* (driver side, and worker-side caching)."""
    with _LOCK:
        _STORE[key] = (generation, payload)


def evict(key: str) -> None:
    """Drop one pinned payload from this process's store."""
    with _LOCK:
        _STORE.pop(key, None)


def clear_resident_store() -> None:
    """Drop every pinned payload (tests and executor shutdown)."""
    with _LOCK:
        _STORE.clear()


def resident_keys() -> list[str]:
    """Keys currently pinned in this process (leak checks)."""
    with _LOCK:
        return sorted(_STORE)


def resolve_payload(obj: Any) -> Any:
    """Return the pinned payload a :class:`ResidentPayloadRef` stands for.

    Non-ref objects pass through untouched, so engines can call this
    unconditionally on every stage-task payload.
    """
    if not isinstance(obj, ResidentPayloadRef):
        return obj
    with _LOCK:
        entry = _STORE.get(obj.key)
    if entry is not None and entry[0] == obj.generation:
        return entry[1]
    if obj.segment is None:
        raise EngineError(
            f"resident payload {obj.key!r} (generation {obj.generation}) is "
            "not installed in this process and carries no shared-memory "
            "segment to restore it from"
        )
    segment = _attach(obj.segment)
    payload = decode_payload(pickle.loads(bytes(segment.buf[: obj.nbytes])))
    install(obj.key, obj.generation, payload)
    return payload
