"""The PCA algorithms the paper compares against (Section 2).

- :mod:`repro.baselines.covariance_pca` -- eigendecomposition of the
  covariance matrix on the Spark engine (MLlib-PCA analog).
- :mod:`repro.baselines.ssvd` -- sequential stochastic SVD (Halko), the
  algorithmic core of Mahout's SSVD.
- :mod:`repro.baselines.ssvd_pca` -- Mahout-PCA analog: SSVD with the mean
  propagated, run as a chain of MapReduce jobs that materialize the big
  intermediate matrices the paper blames for Mahout's poor scaling.
- :mod:`repro.baselines.svd_bidiag` -- Demmel-Kahan three-step dense SVD
  (QR, Golub-Kahan bidiagonalization, bidiagonal SVD).
- :mod:`repro.baselines.lanczos` -- Golub-Kahan-Lanczos bidiagonalization
  SVD for sparse matrices.
"""

from repro.baselines.covariance_mapreduce import CovariancePCAMapReduce
from repro.baselines.covariance_pca import CovariancePCA
from repro.baselines.lanczos import lanczos_svd
from repro.baselines.result import BaselineResult
from repro.baselines.ssvd import stochastic_svd
from repro.baselines.ssvd_pca import SSVDPCAMapReduce
from repro.baselines.svd_bidiag import bidiagonalize, svd_bidiag

__all__ = [
    "BaselineResult",
    "CovariancePCA",
    "CovariancePCAMapReduce",
    "SSVDPCAMapReduce",
    "bidiagonalize",
    "lanczos_svd",
    "stochastic_svd",
    "svd_bidiag",
]
