"""Single-process backend: the correctness reference for the engine backends."""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend
from repro.core.config import SPCAConfig
from repro.jobs.kernels import error_from_colsums
from repro.linalg.blocks import Matrix, RowBlock, partition_rows
from repro.linalg.stats import sample_rows


class SequentialBackend(Backend):
    """Runs every job locally over row blocks, with no engine in between.

    The blocks still go through the same shared kernels as the distributed
    backends, so the sequential backend exercises the identical arithmetic --
    including the ablation code paths -- while adding no simulation overhead.
    """

    def __init__(self, config: SPCAConfig, num_blocks: int = 4):
        super().__init__(config)
        self.num_blocks = num_blocks
        # Materialized X blocks for the use_x_recomputation=False ablation.
        self._materialized_latent: list[np.ndarray] | None = None
        self._intermediate_bytes = 0

    def load(self, data: Matrix) -> list[RowBlock]:
        return partition_rows(data, self.num_blocks)

    def column_means(self, dataset: list[RowBlock]) -> np.ndarray:
        total = None
        count = 0
        for block in dataset:
            sums, rows = self.kernels.sums(block.data)
            total = sums if total is None else total + sums
            count += rows
        return total / count

    def frobenius_centered(self, dataset: list[RowBlock], mean: np.ndarray) -> float:
        efficient = self.config.use_efficient_frobenius
        return sum(
            self.kernels.frobenius(block.data, mean, efficient)
            for block in dataset
        )

    def ytx_xtx(self, dataset, mean, projector, latent_mean):
        mean_prop = self.config.use_mean_propagation
        if not self.config.use_x_recomputation:
            self._materialize_latent(dataset, mean, projector, latent_mean)
        ytx_total = None
        xtx_total = None
        for index, block in enumerate(dataset):
            latent = self._latent_for(index)
            ytx, xtx = self.kernels.ytx_xtx(
                block.data, mean, projector, latent_mean, mean_prop, latent=latent
            )
            ytx_total = ytx if ytx_total is None else ytx_total + ytx
            xtx_total = xtx if xtx_total is None else xtx_total + xtx
        return ytx_total, xtx_total

    def ss3(self, dataset, mean, projector, latent_mean, components) -> float:
        mean_prop = self.config.use_mean_propagation
        total = 0.0
        for index, block in enumerate(dataset):
            latent = self._latent_for(index)
            total += self.kernels.ss3(
                block.data, mean, projector, latent_mean, components, mean_prop,
                latent=latent,
            )
        # Materialized X is only valid within one iteration.
        self._materialized_latent = None
        return total

    def reconstruction_error(self, dataset, mean, components, sample_fraction, rng) -> float:
        ls_projector = components @ np.linalg.inv(components.T @ components)
        residual = np.zeros(mean.shape[0])
        magnitude = np.zeros(mean.shape[0])
        mean_prop = self.config.use_mean_propagation
        for block in dataset:
            data = block.data
            if sample_fraction < 1.0:
                data = sample_rows(data, sample_fraction, rng)
            parts = self.kernels.error_parts(
                data, mean, components, ls_projector, mean_prop
            )
            residual += parts[0]
            magnitude += parts[1]
        return error_from_colsums(residual, magnitude)

    # -- internals -------------------------------------------------------

    def _materialize_latent(self, dataset, mean, projector, latent_mean) -> None:
        mean_prop = self.config.use_mean_propagation
        self._materialized_latent = [
            self.kernels.latent(block.data, mean, projector, latent_mean, mean_prop)
            for block in dataset
        ]
        self._intermediate_bytes += sum(
            latent.nbytes for latent in self._materialized_latent
        )

    def _latent_for(self, index: int) -> np.ndarray | None:
        if self._materialized_latent is None:
            return None
        return self._materialized_latent[index]

    @property
    def intermediate_bytes(self) -> int:
        return self._intermediate_bytes

    def reset_metrics(self) -> None:
        self._intermediate_bytes = 0
