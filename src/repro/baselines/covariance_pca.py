"""MLlib-PCA analog: eigendecomposition of the covariance matrix on Spark.

Section 2.1: "compute the covariance matrix of the input matrix Y, then
compute the eigen-decomposition ... this method is implemented in MLlib".
The defining scalability property, which this implementation reproduces
faithfully, is that the full ``D x D`` Gramian is aggregated *to the driver*
as a dense matrix: the algorithm is deterministic and fast for thin
matrices (the Images dataset), but its driver memory grows as D^2 and it
fails outright once the matrix no longer fits in one machine's memory --
the "Fail" entries of Table 2 and the cliff in Figures 7-8.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.model import PCAModel
from repro.baselines.result import BaselineResult
from repro.engine.spark.context import SparkContext
from repro.errors import ShapeError
from repro.jobs import kernels
from repro.linalg.blocks import Matrix, partition_rows


class CovariancePCA:
    """Deterministic PCA via the covariance matrix (MLlib-style).

    Args:
        n_components: number of principal components d.
        context: the Spark engine to run on (fresh default cluster if
            omitted).  Its driver memory limit decides the failure point.
        partitions_per_core: input partitions per cluster core.
    """

    def __init__(
        self,
        n_components: int,
        context: SparkContext | None = None,
        partitions_per_core: int = 1,
    ):
        if n_components < 1:
            raise ShapeError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.context = context or SparkContext()
        self.partitions_per_core = partitions_per_core

    def fit(self, data: Matrix) -> BaselineResult:
        """Run the single deterministic pass; may raise DriverOutOfMemoryError.

        The driver-side ``D x D`` buffer is claimed *before* any distributed
        work starts, so an oversized input fails fast -- just as MLlib dies
        allocating the Gramian.
        """
        n_rows, n_cols = data.shape
        if self.n_components > min(n_rows, n_cols):
            raise ShapeError(
                f"n_components={self.n_components} exceeds min(N, D)="
                f"{min(n_rows, n_cols)}"
            )
        started = time.perf_counter()
        sim_start = self.context.metrics.total_sim_seconds
        bytes_start = self.context.metrics.total_intermediate_bytes

        gram_bytes = n_cols * n_cols * np.dtype(np.float64).itemsize
        self.context.driver.allocate(gram_bytes, what="D x D covariance matrix")
        try:
            model = self._fit_inner(data, n_rows, n_cols)
        finally:
            self.context.driver.release(gram_bytes)

        return BaselineResult(
            model=model,
            simulated_seconds=self.context.metrics.total_sim_seconds - sim_start,
            wall_seconds=time.perf_counter() - started,
            intermediate_bytes=(
                self.context.metrics.total_intermediate_bytes - bytes_start
            ),
            peak_driver_bytes=self.context.driver.peak_bytes,
        )

    def _fit_inner(self, data: Matrix, n_rows: int, n_cols: int) -> PCAModel:
        num_partitions = self.context.cluster.total_cores * self.partitions_per_core
        blocks = partition_rows(data, num_partitions)
        rdd = self.context.parallelize(
            [(block.start, block.data) for block in blocks],
            num_partitions=len(blocks),
        ).cache()

        sums = self.context.accumulator(np.zeros(n_cols))
        count = self.context.accumulator(0)

        def accumulate_mean(partition):
            for _, block in partition:
                block_sums, rows = kernels.block_sums(block)
                sums.add(block_sums)
                count.add(rows)

        rdd.foreach_partition(accumulate_mean)
        mean = sums.value / count.value

        # Gramian aggregation: every task ships a dense D x D partial -- the
        # quadratic communication of Table 1's first row.
        gram = self.context.accumulator(np.zeros((n_cols, n_cols)))

        def accumulate_gram(partition):
            for _, block in partition:
                partial = block.T @ block
                partial = np.asarray(
                    partial.todense() if hasattr(partial, "todense") else partial,
                    dtype=np.float64,
                )
                gram.add(partial)

        rdd.foreach_partition(accumulate_gram)
        covariance = gram.value / n_rows - np.outer(mean, mean)

        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        top = order[: self.n_components]
        components = eigenvectors[:, top]
        discarded = eigenvalues[order[self.n_components :]]
        noise_variance = float(discarded.mean()) if discarded.size else 0.0

        return PCAModel(
            components=components,
            mean=mean,
            noise_variance=max(noise_variance, 0.0),
            n_samples=n_rows,
        )
