"""The repro-spca command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.persistence import load_model
from repro.data.io import load_matrix


@pytest.fixture
def matrix_path(tmp_path):
    path = tmp_path / "data.npz"
    code = main(["generate", "tweets", "--rows", "300", "--cols", "80",
                 "--seed", "3", "--out", str(path)])
    assert code == 0
    return path


class TestGenerate:
    def test_generates_all_datasets(self, tmp_path, capsys):
        for dataset in ("tweets", "biotext", "diabetes", "images"):
            out = tmp_path / f"{dataset}.npz"
            assert main(["generate", dataset, "--rows", "50", "--cols", "60",
                         "--out", str(out)]) == 0
            matrix = load_matrix(out)
            assert matrix.shape == (50, 60)
        output = capsys.readouterr().out
        assert "images" in output

    def test_sparse_density_reported(self, matrix_path, capsys):
        pass  # generation already checked via fixture


class TestFit:
    def test_fit_and_save(self, matrix_path, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        code = main(["fit", str(matrix_path), "--components", "4",
                     "--max-iterations", "5", "--out", str(model_path)])
        assert code == 0
        model = load_model(model_path)
        assert model.n_components == 4
        assert "iterations" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["mapreduce", "spark"])
    def test_fit_on_engine_backends(self, matrix_path, backend, capsys):
        code = main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "3", "--backend", backend])
        assert code == 0
        assert "simulated cluster time" in capsys.readouterr().out

    def test_fit_with_smart_init(self, matrix_path, capsys):
        code = main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "3", "--smart-init"])
        assert code == 0

    def test_missing_input_is_a_clean_error(self, tmp_path, capsys):
        code = main(["fit", str(tmp_path / "nope.npz"), "--components", "2"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTransformEvaluateInfo:
    @pytest.fixture
    def model_path(self, matrix_path, tmp_path):
        path = tmp_path / "model.npz"
        main(["fit", str(matrix_path), "--components", "4",
              "--max-iterations", "5", "--out", str(path)])
        return path

    def test_transform(self, model_path, matrix_path, tmp_path, capsys):
        out = tmp_path / "latent.npz"
        assert main(["transform", str(model_path), str(matrix_path),
                     "--out", str(out)]) == 0
        latent = load_matrix(out)
        assert latent.shape == (300, 4)

    def test_evaluate(self, model_path, matrix_path, capsys):
        assert main(["evaluate", str(model_path), str(matrix_path)]) == 0
        output = capsys.readouterr().out
        assert "accuracy" in output

    def test_evaluate_with_sampling(self, model_path, matrix_path):
        assert main(["evaluate", str(model_path), str(matrix_path),
                     "--sample-fraction", "0.5"]) == 0

    def test_info_model(self, model_path, capsys):
        assert main(["info", str(model_path)]) == 0
        assert "PCA model" in capsys.readouterr().out

    def test_info_matrix(self, matrix_path, capsys):
        assert main(["info", str(matrix_path)]) == 0
        assert "matrix" in capsys.readouterr().out

    def test_info_unknown_archive(self, tmp_path, capsys):
        bogus = tmp_path / "x.npz"
        np.savez(bogus, stuff=np.ones(2))
        assert main(["info", str(bogus)]) == 1


class TestTraceAndReport:
    @pytest.fixture
    def trace_path(self, matrix_path, tmp_path):
        path = tmp_path / "fit.trace.json"
        code = main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "3", "--backend", "mapreduce",
                     "--trace", str(path)])
        assert code == 0
        return path

    @pytest.mark.parametrize("backend", ["mapreduce", "spark"])
    def test_fit_trace_is_valid_chrome_json_that_reconciles(
        self, matrix_path, tmp_path, backend, capsys
    ):
        import json

        path = tmp_path / f"{backend}.trace.json"
        code = main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "3", "--backend", backend,
                     "--trace", str(path)])
        assert code == 0
        assert "trace written to" in capsys.readouterr().out
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        phases = {entry.get("ph") for entry in document["traceEvents"]}
        assert {"M", "X"} <= phases

        # Byte accounting is deterministic across runs (simulated durations
        # are measured wall times and jitter), so the trace's per-job byte
        # sums must agree exactly with a fresh identical run's EngineMetrics.
        # Duration-exact reconciliation within one run is asserted in
        # tests/test_obs_integration.py.
        from repro.cli import _make_backend
        from repro.core import SPCA, SPCAConfig
        from repro.obs import load_trace
        from repro.obs.report import job_spans

        config = SPCAConfig(n_components=3, max_iterations=3, seed=0)
        fresh = _make_backend(backend, config)
        SPCA(config, fresh).fit(load_matrix(matrix_path))
        metrics = (fresh.runtime.metrics if hasattr(fresh, "runtime")
                   else fresh.context.metrics)
        spans = job_spans(load_trace(path))
        assert [s.name for s in spans] == [j.name for j in metrics.jobs]
        for column in ("shuffle_bytes", "intermediate_bytes", "hdfs_read_bytes",
                       "hdfs_write_bytes", "broadcast_bytes"):
            trace_total = sum(int(s.attrs[column]) for s in spans)
            metrics_total = sum(int(getattr(j, column)) for j in metrics.jobs)
            assert trace_total == metrics_total, column
        assert all(s.dur >= 0.0 for s in spans)

    def test_fit_trace_jsonl_extension_selects_jsonl(self, matrix_path, tmp_path):
        import json

        path = tmp_path / "fit.jsonl"
        code = main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "2", "--trace", str(path),
                     "--backend", "spark"])
        assert code == 0
        lines = path.read_text().splitlines()
        # A .jsonl trace from `fit` is written incrementally: streaming
        # header up front, counts only in the footer.
        header = json.loads(lines[0])
        assert header == {"rec": "header", "schema": "repro.obs/1",
                          "streaming": True}
        footer = json.loads(lines[-1])
        assert footer["rec"] == "footer"
        assert footer["spans"] > 0
        # And it loads back like any other trace.
        from repro.obs import load_trace

        trace = load_trace(path)
        assert len(trace.spans) == footer["spans"]
        assert len(trace.events) == footer["events"]

    def test_trace_inspect(self, trace_path, capsys):
        assert main(["trace", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "spans" in output
        assert "job" in output and "iteration" in output

    def test_trace_convert_roundtrip(self, trace_path, tmp_path, capsys):
        from repro.obs import load_trace

        jsonl = tmp_path / "converted.jsonl"
        assert main(["trace", str(trace_path), "--to", str(jsonl)]) == 0
        back = tmp_path / "back.trace.json"
        assert main(["trace", str(jsonl), "--to", str(back)]) == 0
        original, rebuilt = load_trace(trace_path), load_trace(back)
        assert rebuilt.spans == original.spans
        assert rebuilt.events == original.events

    def test_report_prints_convergence_table(self, trace_path, capsys):
        assert main(["report", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "== jobs ==" in output
        assert "== phases ==" in output
        assert "== iterations ==" in output
        assert "objective" in output
        assert "spca.fit[" in output

    def test_report_single_section(self, trace_path, capsys):
        assert main(["report", str(trace_path), "--section", "iterations"]) == 0
        output = capsys.readouterr().out
        assert "== iterations ==" in output
        assert "== jobs ==" not in output

    def test_trace_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_report_critical_path_and_straggler_sections(self, trace_path, capsys):
        assert main(["report", str(trace_path),
                     "--section", "critical-path"]) == 0
        output = capsys.readouterr().out
        assert "== critical path ==" in output
        assert "by kind:" in output
        assert main(["report", str(trace_path), "--section", "stragglers"]) == 0
        assert "== stragglers ==" in capsys.readouterr().out

    def test_report_html(self, trace_path, tmp_path, capsys):
        out = tmp_path / "report.html"
        assert main(["report", str(trace_path), "--html", str(out)]) == 0
        assert "html report written to" in capsys.readouterr().out
        html = out.read_text()
        assert html.startswith("<!doctype html>")
        assert "<svg" in html
        assert "Critical path" in html
        # Self-contained: no external scripts or stylesheets.
        assert "<script src" not in html
        assert "<link" not in html

    def test_report_empty_trace_degrades_gracefully(self, tmp_path, capsys):
        empty = tmp_path / "empty.trace.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 0
        captured = capsys.readouterr()
        assert "trace file is empty" in captured.err
        assert "== jobs ==" in captured.out

    def test_report_truncated_jsonl_degrades_gracefully(
        self, matrix_path, tmp_path, capsys
    ):
        path = tmp_path / "fit.jsonl"
        assert main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "2", "--trace", str(path)]) == 0
        capsys.readouterr()
        lines = path.read_text().splitlines()
        # Chop the footer and cut the last span line in half, as if the
        # writer died mid-record.
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:-2] + [lines[-2][: len(lines[-2]) // 2]]))
        assert main(["report", str(truncated)]) == 0
        captured = capsys.readouterr()
        assert "malformed JSONL" in captured.err
        assert "== jobs ==" in captured.out

    def test_report_truncated_chrome_json_degrades_gracefully(
        self, trace_path, tmp_path, capsys
    ):
        text = trace_path.read_text()
        cut = tmp_path / "cut.trace.json"
        cut.write_text(text[: int(len(text) * 0.6)])
        assert main(["report", str(cut)]) == 0
        captured = capsys.readouterr()
        assert "salvaged" in captured.err
        assert "== jobs ==" in captured.out


class TestMetricsAndLive:
    @pytest.fixture
    def trace_and_metrics(self, matrix_path, tmp_path):
        trace = tmp_path / "fit.trace.json"
        metrics = tmp_path / "fit.metrics.json"
        code = main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "3", "--backend", "spark",
                     "--trace", str(trace), "--metrics", str(metrics)])
        assert code == 0
        return trace, metrics

    def test_fit_writes_metrics_snapshot(self, trace_and_metrics):
        import json

        _, metrics_path = trace_and_metrics
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["schema"] == "repro.metrics/1"
        names = {c["name"] for c in snapshot["counters"]}
        assert "spca_jobs_total" in names
        assert "spca_em_iterations_total" in names
        assert any(h["name"] == "spca_job_sim_seconds"
                   for h in snapshot["histograms"])

    def test_fit_metrics_prom_extension_selects_prometheus(
        self, matrix_path, tmp_path
    ):
        from repro.obs import parse_prometheus

        prom = tmp_path / "fit.metrics.prom"
        assert main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "2", "--backend", "mapreduce",
                     "--metrics", str(prom)]) == 0
        text = prom.read_text()
        assert "# TYPE spca_jobs_total counter" in text
        samples = parse_prometheus(text)
        assert any(name == "spca_jobs_total" for name, _ in samples)

    def test_report_html_with_metrics_snapshot(self, trace_and_metrics, tmp_path):
        trace_path, metrics_path = trace_and_metrics
        out = tmp_path / "report.html"
        assert main(["report", str(trace_path), "--html", str(out),
                     "--metrics", str(metrics_path)]) == 0
        html = out.read_text()
        assert "Metrics snapshot" in html
        assert "spca_jobs_total" in html

    def test_fit_live_plain_renders_iteration_lines(self, matrix_path, capsys):
        assert main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "3", "--backend", "mapreduce",
                     "--live"]) == 0
        err = capsys.readouterr().err
        live_lines = [li for li in err.splitlines() if li.startswith("[live]")]
        assert len(live_lines) == 3
        assert "iter=3" in live_lines[-1]
        assert "obj=" in live_lines[-1]

    def test_diff_of_identical_traces_has_no_regressions(
        self, trace_and_metrics, capsys
    ):
        trace_path, _ = trace_and_metrics
        assert main(["diff", str(trace_path), str(trace_path),
                     "--fail-on-regression"]) == 0
        output = capsys.readouterr().out
        assert "total:sim_seconds" in output
        assert "1.000" in output

    def test_diff_flags_new_work_as_regression(
        self, trace_and_metrics, tmp_path, capsys
    ):
        trace_path, _ = trace_and_metrics
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["diff", str(empty), str(trace_path),
                     "--fail-on-regression"]) == 1
        assert "new" in capsys.readouterr().out

    def test_trace_diff_alias(self, trace_and_metrics, capsys):
        trace_path, _ = trace_and_metrics
        assert main(["trace", str(trace_path), "--diff", str(trace_path)]) == 0
        assert "baseline:" in capsys.readouterr().out


class TestSelect:
    def test_select_reports_bic_table(self, matrix_path, capsys):
        code = main(["select", str(matrix_path), "--candidates", "1,2,4",
                     "--max-iterations", "20"])
        assert code == 0
        output = capsys.readouterr().out
        assert "BIC" in output
        assert "chosen d =" in output

    def test_select_malformed_candidates(self, matrix_path, capsys):
        code = main(["select", str(matrix_path), "--candidates", "a,b"])
        assert code == 2

    def test_select_invalid_candidates(self, matrix_path, capsys):
        code = main(["select", str(matrix_path), "--candidates", "0,2"])
        assert code == 2


class TestBench:
    def test_bench_prints_comparison(self, matrix_path, capsys):
        code = main(["bench", str(matrix_path), "--components", "3"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("sPCA-Spark", "MLlib-PCA", "sPCA-MapReduce", "Mahout-PCA"):
            assert name in output


class TestStream:
    @pytest.fixture
    def dense_path(self, tmp_path):
        path = tmp_path / "dense.npz"
        assert main(["generate", "images", "--rows", "300", "--cols", "30",
                     "--seed", "4", "--out", str(path)]) == 0
        return path

    def test_stream_file_and_save_model(self, dense_path, tmp_path, capsys):
        out = tmp_path / "model.npz"
        code = main(["stream", str(dense_path), "-d", "3", "--window", "60",
                     "--backend", "mapreduce", "--out", str(out)])
        assert code == 0
        output = capsys.readouterr().out
        assert "streamed (300, 30)" in output
        assert "5 windows, 300 rows" in output
        assert "simulated cluster time" in output
        model = load_model(out)
        assert model.components.shape == (30, 3)
        assert model.n_samples == 300

    def test_stream_matches_library_reference(self, dense_path, tmp_path):
        from repro.extensions.incremental import IncrementalPPCA
        from repro.stream import StreamConfig, reference_windows

        out = tmp_path / "model.npz"
        assert main(["stream", str(dense_path), "-d", "3", "--window", "60",
                     "--seed", "7", "--backend", "spark",
                     "--out", str(out)]) == 0
        matrix = load_matrix(dense_path)
        windows = reference_windows(
            matrix, StreamConfig(n_components=3, window=60, seed=7).spec()
        )
        oracle = IncrementalPPCA(3, seed=7).partial_fit_stream(
            (w.rows for w in windows), n_cols=30
        )
        model = load_model(out)
        assert np.array_equal(model.components, oracle.components)
        assert model.noise_variance == oracle.noise_variance

    def test_synthetic_stream_with_drift(self, tmp_path, capsys):
        code = main(["stream", "--synthetic", "24,3", "-d", "3",
                     "--window", "120", "--max-windows", "15",
                     "--drift-at", "900", "--drift-angle", "60",
                     "--drift-threshold", "15", "--drift-warmup", "5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "stop: max_windows" in output
        assert "drift detected at window" in output

    def test_checkpoint_then_resume(self, dense_path, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        out_a = tmp_path / "partial.npz"
        out_b = tmp_path / "final.npz"
        out_c = tmp_path / "clean.npz"
        assert main(["stream", str(dense_path), "-d", "2", "--window", "50",
                     "--max-windows", "3", "--checkpoint", str(ckpt),
                     "--out", str(out_a)]) == 0
        assert main(["stream", str(dense_path), "-d", "2", "--window", "50",
                     "--checkpoint", str(ckpt), "--resume",
                     "--out", str(out_b)]) == 0
        output = capsys.readouterr().out
        assert "resumed" in output
        assert main(["stream", str(dense_path), "-d", "2", "--window", "50",
                     "--out", str(out_c)]) == 0
        resumed, clean = load_model(out_b), load_model(out_c)
        assert np.array_equal(resumed.components, clean.components)
        assert resumed.noise_variance == clean.noise_variance

    def test_stream_trace_and_metrics(self, dense_path, tmp_path, capsys):
        trace = tmp_path / "stream.jsonl"
        metrics = tmp_path / "stream-metrics.json"
        code = main(["stream", str(dense_path), "-d", "2", "--window", "75",
                     "--backend", "mapreduce", "--trace", str(trace),
                     "--metrics", str(metrics)])
        assert code == 0
        assert trace.exists() and metrics.exists()
        import json

        snapshot = json.loads(metrics.read_text())
        names = {item["name"] for item in snapshot["counters"]}
        assert "spca_stream_rows_total" in names
        assert "spca_stream_windows_total" in names
        html = tmp_path / "report.html"
        assert main(["report", str(trace), "--metrics", str(metrics),
                     "--html", str(html)]) == 0
        assert "<h2>Streaming</h2>" in html.read_text()

    def test_usage_errors(self, dense_path, tmp_path, capsys):
        assert main(["stream"]) == 2
        assert main(["stream", "--synthetic", "24,3", "-d", "2",
                     "--window", "10"]) == 2  # unbounded without a bound
        assert main(["stream", str(dense_path), "--synthetic", "8,2",
                     "--max-windows", "2"]) == 2
        assert main(["stream", "--synthetic", "nope", "--max-windows",
                     "2"]) == 2
        assert main(["stream", str(dense_path), "--resume"]) == 2
