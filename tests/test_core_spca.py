"""The sPCA driver on the sequential backend must match reference PPCA/SVD."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backends import SequentialBackend
from repro.core import SPCA, SPCAConfig, fit_ppca
from repro.errors import ShapeError
from repro.metrics import ideal_accuracy, reconstruction_error, subspace_angle_degrees


def lowrank_data(n=300, d_cols=20, rank=4, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(n, rank))
    loadings = rng.normal(size=(rank, d_cols)) * np.sqrt(np.arange(rank, 0, -1))[:, None]
    return factors @ loadings + noise * rng.normal(size=(n, d_cols)) + rng.normal(size=d_cols)


def exact_basis(data, k):
    centered = data - np.asarray(data.mean(axis=0)).ravel()
    if sp.issparse(centered):
        centered = np.asarray(centered)
    _, _, vt = np.linalg.svd(np.asarray(centered), full_matrices=False)
    return vt[:k].T


@pytest.fixture
def config():
    return SPCAConfig(n_components=4, max_iterations=100, tolerance=1e-9, seed=1)


def test_spca_recovers_subspace(config):
    data = lowrank_data()
    model, history = SPCA(config).fit(data)
    assert subspace_angle_degrees(model.basis, exact_basis(data, 4)) < 1.0
    assert history.n_iterations >= 1


def test_spca_matches_reference_ppca(config):
    # Same seed, same initialization path => identical trajectories.
    data = lowrank_data(seed=3)
    cfg = config.with_options(max_iterations=7, tolerance=0.0, seed=42,
                              compute_error_every_iteration=False)
    model, _ = SPCA(cfg).fit(data)
    reference = fit_ppca(data, 4, max_iterations=7, tolerance=0.0, seed=42)
    np.testing.assert_allclose(model.components, reference.components, atol=1e-8)
    assert model.noise_variance == pytest.approx(reference.noise_variance, rel=1e-8)


def test_spca_sparse_input(config):
    matrix = sp.random(200, 30, density=0.2, random_state=5, format="csr")
    model, history = SPCA(config.with_options(max_iterations=40)).fit(matrix)
    dense_basis = exact_basis(np.asarray(matrix.todense()), 4)
    assert subspace_angle_degrees(model.basis, dense_basis) < 5.0
    assert history.final_accuracy is not None


def test_spca_error_decreases(config):
    data = lowrank_data(seed=6)
    _, history = SPCA(config.with_options(max_iterations=20, tolerance=0.0)).fit(data)
    errors = [s.error for s in history.iterations]
    assert errors[-1] < errors[0]


def test_spca_stops_at_target_accuracy():
    data = lowrank_data(seed=7, noise=0.01)
    ideal = ideal_accuracy(data, 4)
    cfg = SPCAConfig(
        n_components=4, max_iterations=50, tolerance=0.0, target_accuracy=0.95,
        ideal_accuracy=ideal, seed=2,
    )
    _, history = SPCA(cfg).fit(data)
    assert history.stop_reason == "target_accuracy"
    assert history.final_accuracy >= 0.95 * ideal
    assert history.n_iterations < 50


def test_spca_stops_on_tolerance():
    data = lowrank_data(seed=8)
    cfg = SPCAConfig(n_components=4, max_iterations=500, tolerance=1e-7, seed=3)
    _, history = SPCA(cfg).fit(data)
    assert history.stop_reason in ("tolerance", "target_accuracy")
    assert history.n_iterations < 500


def test_spca_smart_init_starts_closer_to_the_subspace():
    # After a single full-data EM iteration, the warm-started run should be
    # much closer to the true subspace than the random-initialized one.
    data = lowrank_data(n=800, seed=9)
    exact = exact_basis(data, 4)
    base = SPCAConfig(n_components=4, max_iterations=1, tolerance=0.0, seed=4,
                      compute_error_every_iteration=False)
    cold_model, _ = SPCA(base).fit(data)
    warm_model, _ = SPCA(base.with_options(smart_init=True, smart_init_fraction=0.1,
                                           smart_init_iterations=50)).fit(data)
    cold_angle = subspace_angle_degrees(cold_model.basis, exact)
    warm_angle = subspace_angle_degrees(warm_model.basis, exact)
    assert warm_angle < cold_angle


def test_spca_ablations_produce_same_model():
    data = sp.random(150, 25, density=0.25, random_state=11, format="csr")
    base = SPCAConfig(n_components=3, max_iterations=8, tolerance=0.0, seed=5,
                      compute_error_every_iteration=False)
    model_opt, _ = SPCA(base).fit(data)
    for flags in (
        {"use_mean_propagation": False},
        {"use_efficient_frobenius": False},
        {"use_x_recomputation": False},
        {"use_job_consolidation": False},
    ):
        model_abl, _ = SPCA(base.with_options(**flags)).fit(data)
        np.testing.assert_allclose(
            model_abl.components, model_opt.components, atol=1e-8,
            err_msg=f"ablation {flags} changed the result",
        )


def test_spca_fully_unoptimized_same_model():
    data = sp.random(100, 20, density=0.3, random_state=13, format="csr")
    base = SPCAConfig(n_components=2, max_iterations=5, tolerance=0.0, seed=6,
                      compute_error_every_iteration=False)
    model_opt, _ = SPCA(base).fit(data)
    model_unopt, _ = SPCA(base.unoptimized()).fit(data)
    np.testing.assert_allclose(model_unopt.components, model_opt.components, atol=1e-8)


def test_spca_rejects_too_many_components():
    with pytest.raises(ShapeError):
        SPCA(SPCAConfig(n_components=10)).fit(np.ones((5, 5)))


def test_history_timeline_and_time_to_accuracy(config):
    data = lowrank_data(seed=14)
    _, history = SPCA(config.with_options(max_iterations=15, tolerance=0.0)).fit(data)
    timeline = history.accuracy_timeline(simulated=False)
    assert len(timeline) == history.n_iterations
    times = [t for t, _ in timeline]
    assert times == sorted(times)
    final_accuracy = history.final_accuracy
    assert history.time_to_accuracy(final_accuracy * 0.5, simulated=False) is not None
    assert history.time_to_accuracy(1.1, simulated=False) is None


def test_error_sampling_approximates_full_error():
    data = lowrank_data(n=2000, seed=15)
    cfg = SPCAConfig(n_components=4, max_iterations=10, tolerance=0.0, seed=7,
                     error_sample_fraction=0.2)
    model, history = SPCA(cfg).fit(data)
    full = reconstruction_error(data, model.components, model.mean)
    sampled = history.iterations[-1].error
    assert sampled == pytest.approx(full, abs=0.05)
