"""Typed, deterministic fault events and the plans that carry them.

A :class:`FaultPlan` is an ordered list of fault events, each naming the job
(or Spark stage) it strikes with a glob pattern plus enough coordinates --
task id, attempt count, occurrence index -- to make the schedule exactly
reproducible.  Plans serialize to a small JSON document so a failure
scenario can be checked into a repository, attached to a bug report, or
replayed from the command line (``repro-spca fit --faults plan.json``).

The event vocabulary mirrors the failure modes of the paper's platforms:

- :class:`KillTask` -- Hadoop/Spark task-attempt failure; the engine
  re-executes the attempt (Dean & Ghemawat, OSDI 2004, Section 3.3).
- :class:`Straggler` -- a slow task, the trigger for speculative execution.
- :class:`FetchFailure` -- a failed shuffle/remote read; surfaces as a
  failed reduce attempt on MapReduce and a failed task on Spark.
- :class:`ExecutorLoss` -- Spark loses a worker: every partition it cached
  is dropped and must be recomputed from lineage (Zaharia et al., NSDI 2012).
- :class:`DriverMemoryCap` -- caps the Spark driver heap so an oversized
  collect raises ``DriverOutOfMemoryError``, Table 2's "Fail" entries.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Union

from repro.errors import InvalidPlanError

_FORMAT_VERSION = 1

# Task kinds an event may target.  ``map``/``combine``/``reduce`` exist only
# on the MapReduce engine; ``task`` is the Spark engine's single kind; None
# matches any kind on either engine.
TASK_KINDS = ("map", "combine", "reduce", "task")


@dataclass(frozen=True)
class KillTask:
    """Fail attempts 1..``attempts`` of a matching task, forcing retries.

    Attributes:
        job: glob pattern matched against the job/stage name.
        kind: restrict to one task kind (see :data:`TASK_KINDS`); None = any.
        task: task/partition id to strike; None = every task of the job.
        attempts: how many consecutive attempts fail.  ``attempts >=
            max_task_attempts`` kills the whole job.
        occurrence: which run of a matching job is struck (0-based, counted
            per event); None = every run.
    """

    job: str
    kind: str | None = None
    task: int | None = None
    attempts: int = 1
    occurrence: int | None = 0


@dataclass(frozen=True)
class Straggler:
    """Multiply a matching task's measured compute time by ``factor``.

    Results are untouched; only the simulated timeline slows down, which is
    what lets speculative execution's 3x-median cap kick in.
    """

    job: str
    kind: str | None = None
    task: int | None = None
    factor: float = 3.0
    occurrence: int | None = 0


@dataclass(frozen=True)
class FetchFailure:
    """A failed remote fetch: reduce-side on MapReduce, any task on Spark."""

    job: str
    task: int | None = None
    attempts: int = 1
    occurrence: int | None = 0


@dataclass(frozen=True)
class ExecutorLoss:
    """Spark loses executor ``executor`` as a matching stage starts.

    Every cached partition living on that executor (``split % num_nodes ==
    executor``) is evicted and must be recomputed from lineage; the
    recomputation time is charged to the stage as recovery time.  Ignored by
    the MapReduce engine, whose tasks restart from durable HDFS input.
    """

    job: str
    executor: int = 0
    occurrence: int | None = 0


@dataclass(frozen=True)
class DriverMemoryCap:
    """Cap the Spark driver heap at ``limit_bytes`` from a matching stage on.

    Models running the driver on a smaller machine: the next driver-side
    allocation that exceeds the cap raises ``DriverOutOfMemoryError``
    (the paper's Table 2 "Fail" entries).  Ignored by MapReduce.
    """

    job: str
    limit_bytes: int = 1
    occurrence: int | None = 0


FaultEvent = Union[KillTask, Straggler, FetchFailure, ExecutorLoss, DriverMemoryCap]

_EVENT_TYPES: dict[str, type] = {
    "kill_task": KillTask,
    "straggler": Straggler,
    "fetch_failure": FetchFailure,
    "executor_loss": ExecutorLoss,
    "driver_memory_cap": DriverMemoryCap,
}
_TYPE_NAMES = {cls: name for name, cls in _EVENT_TYPES.items()}


def _validate_event(event: FaultEvent, where: str) -> None:
    if not isinstance(event, tuple(_EVENT_TYPES.values())):
        raise InvalidPlanError(f"{where}: {type(event).__name__} is not a fault event")
    if not event.job:
        raise InvalidPlanError(f"{where}: job pattern must be non-empty")
    if event.occurrence is not None and event.occurrence < 0:
        raise InvalidPlanError(f"{where}: occurrence must be >= 0 or None")
    kind = getattr(event, "kind", None)
    if kind is not None and kind not in TASK_KINDS:
        raise InvalidPlanError(f"{where}: unknown task kind {kind!r}")
    task = getattr(event, "task", None)
    if task is not None and task < 0:
        raise InvalidPlanError(f"{where}: task must be >= 0 or None")
    if isinstance(event, (KillTask, FetchFailure)) and event.attempts < 1:
        raise InvalidPlanError(f"{where}: attempts must be >= 1")
    if isinstance(event, Straggler) and event.factor <= 0.0:
        raise InvalidPlanError(f"{where}: straggler factor must be > 0")
    if isinstance(event, ExecutorLoss) and event.executor < 0:
        raise InvalidPlanError(f"{where}: executor must be >= 0")
    if isinstance(event, DriverMemoryCap) and event.limit_bytes < 1:
        raise InvalidPlanError(f"{where}: limit_bytes must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, serializable schedule of fault events."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        self.validate()

    def validate(self) -> None:
        """Raise :class:`InvalidPlanError` on any malformed event."""
        for index, event in enumerate(self.events):
            _validate_event(event, f"event #{index}")

    def check_recoverable(self, max_task_attempts: int) -> bool:
        """Whether every kill/fetch event leaves at least one attempt alive.

        A plan is recoverable when no event can exhaust ``max_task_attempts``
        on its own, i.e. engines are guaranteed to finish every job.  This is
        the invariant the chaos property suite generates under.
        """
        return all(
            event.attempts < max_task_attempts
            for event in self.events
            if isinstance(event, (KillTask, FetchFailure))
        )

    # -- JSON round trip --------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "version": _FORMAT_VERSION,
            "events": [
                {"type": _TYPE_NAMES[type(event)], **dataclasses.asdict(event)}
                for event in self.events
            ],
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidPlanError(f"malformed fault plan JSON: {exc}") from exc
        if not isinstance(payload, dict) or "events" not in payload:
            raise InvalidPlanError("fault plan must be an object with an 'events' list")
        version = payload.get("version", _FORMAT_VERSION)
        if version > _FORMAT_VERSION:
            raise InvalidPlanError(
                f"fault plan format v{version} is newer than this library "
                f"understands (v{_FORMAT_VERSION})"
            )
        events = []
        for index, entry in enumerate(payload["events"]):
            where = f"event #{index}"
            if not isinstance(entry, dict) or "type" not in entry:
                raise InvalidPlanError(f"{where}: must be an object with a 'type'")
            entry = dict(entry)
            type_name = entry.pop("type")
            event_cls = _EVENT_TYPES.get(type_name)
            if event_cls is None:
                raise InvalidPlanError(f"{where}: unknown fault type {type_name!r}")
            known = {f.name for f in dataclasses.fields(event_cls)}
            unknown = set(entry) - known
            if unknown:
                raise InvalidPlanError(
                    f"{where}: unknown fields for {type_name}: {sorted(unknown)}"
                )
            try:
                events.append(event_cls(**entry))
            except TypeError as exc:
                raise InvalidPlanError(f"{where}: {exc}") from exc
        return cls(events=tuple(events))

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "FaultPlan":
        return cls.from_json(pathlib.Path(path).read_text())
