"""Figure 4: accuracy vs time on the Bio-Text dataset (sPCA-MR vs Mahout).

Paper shape: sPCA reaches ~93% of ideal accuracy in its second iteration
and converges quickly; Mahout-PCA takes several times longer to approach
the same accuracy.
"""

import pytest

from harness import dataset_ideal_accuracy, run_mahout, run_spca
from repro.data.paper import biotext_series
from repro.metrics import percent_of_ideal


@pytest.mark.benchmark(group="fig4")
def test_fig4_accuracy_vs_time_biotext(benchmark, report):
    spec = biotext_series()[1]  # the 10K-column point used in the figure
    data = spec.generate()
    ideal = dataset_ideal_accuracy(data)
    outcomes = {}

    def run_all():
        outcomes["spca"] = run_spca(data, "mapreduce", ideal=ideal)
        outcomes["mahout"] = run_mahout(data, ideal=ideal, power_iterations=5)
        return 2

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    spca, mahout = outcomes["spca"], outcomes["mahout"]

    report(f"Figure 4: accuracy vs time, Bio-Text ({spec.label}); ideal={ideal:.4f}")
    report(f"{'series':<18}{'time (sim s)':>14}{'accuracy':>10}{'% of ideal':>12}")
    for label, outcome in (("sPCA-MapReduce", spca), ("Mahout-PCA", mahout)):
        for seconds, accuracy in outcome.accuracy_timeline:
            report(
                f"{label:<18}{seconds:>14.1f}{accuracy:>10.4f}"
                f"{percent_of_ideal(accuracy, ideal):>12.1f}"
            )

    # sPCA reaches >=90% of ideal within its first two iterations.
    assert len(spca.accuracy_timeline) >= 2
    second_iteration_accuracy = spca.accuracy_timeline[1][1]
    assert percent_of_ideal(second_iteration_accuracy, ideal) >= 90.0

    # sPCA reaches 95% of ideal sooner than Mahout does.
    spca_time = spca.time_to_accuracy(0.95 * ideal) if hasattr(spca, "time_to_accuracy") else None
    spca_time = next(
        (t for t, a in spca.accuracy_timeline if a >= 0.95 * ideal), None
    )
    mahout_time = next(
        (t for t, a in mahout.accuracy_timeline if a >= 0.95 * ideal), None
    )
    assert spca_time is not None
    if mahout_time is not None:
        assert spca_time < mahout_time
    else:
        # Mahout never reached the target: strictly worse.
        assert spca_time < mahout.seconds
