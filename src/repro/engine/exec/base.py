"""The task-executor contract shared by both engine simulators.

A :class:`TaskExecutor` runs a batch of *independent* tasks -- the map tasks
of one MapReduce stage, the reduce tasks over disjoint key groups, or the
partitions of one Spark stage -- and returns their results **in task-index
order** regardless of completion order.  Everything with a side effect
(counters, trace events, cache puts, accumulator updates, fault accounting)
stays out of the executor: tasks return pure outcome records and the driver
commits them in index order, which is what keeps every executor bit-identical
to ``serial`` (see ``docs/engines.md``).

Observability: concurrent executors emit an ``executor_dispatch`` event when
a batch is submitted and an ``executor_join`` event when the last task
finishes, carrying the per-task wall times.  The ``serial`` executor emits
nothing so traces from the default configuration are byte-identical to the
pre-executor engine.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Sequence

import repro.engine.exec.resident as resident
from repro.engine.exec.resident import ResidentPayloadRef
from repro.engine.serde import clear_sizeof_cache
from repro.obs import get_tracer
from repro.obs.metrics import get_registry


def default_worker_count() -> int:
    """The worker count used when ``--workers`` is not given (capped at 8)."""
    return max(1, min(8, os.cpu_count() or 1))


class TaskExecutor:
    """Runs independent task thunks; results come back in submission order."""

    #: executor name as exposed on the CLI (`--executor ...`)
    name = "base"
    #: True only for the serial executor (engines keep their legacy code path)
    serial = False

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        # key -> the ResidentPayloadRef minted for it (worker-resident pins)
        self._pins: dict[str, ResidentPayloadRef] = {}

    # -- the contract ----------------------------------------------------

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        label: str = "tasks",
    ) -> list[Any]:
        """Run ``fn(payload)`` for every payload; return results by index.

        Concurrent implementations may evaluate in any order but MUST return
        ``[fn(payloads[0]), fn(payloads[1]), ...]``.  If several tasks raise,
        the exception of the lowest-index failing task propagates (matching
        what a serial left-to-right loop would have raised).
        """
        raise NotImplementedError

    # -- worker-resident payloads ----------------------------------------

    def pin_payload(self, key: str, payload: Any) -> ResidentPayloadRef:
        """Pin *payload* so later dispatches can ship a tiny ref instead.

        The base implementation serves every in-process executor (serial,
        threads): the payload is installed in the driver's resident store
        and :func:`repro.engine.exec.resident.resolve_payload` hands back
        the *identical* object, so a pinned run is bitwise equal to an
        unpinned one.  The process executor overrides this to also stage a
        pickled copy in shared memory for workers forked too late to
        inherit the store.
        """
        self.unpin_payload(key)
        ref = ResidentPayloadRef(key=key, generation=resident.next_generation())
        resident.install(key, ref.generation, payload)
        self._pins[key] = ref
        return ref

    def unpin_payload(self, key: str) -> None:
        """Release one pin (idempotent)."""
        ref = self._pins.pop(key, None)
        if ref is None:
            return
        resident.evict(key)
        self._release_pin(ref)

    def unpin_all(self) -> None:
        """Release every pin this executor installed."""
        for key in list(self._pins):
            self.unpin_payload(key)

    def _release_pin(self, ref: ResidentPayloadRef) -> None:
        """Backend hook: free transport resources attached to one pin."""

    def closure_executor(self) -> "TaskExecutor":
        """The executor to use for non-picklable (closure-capturing) tasks.

        Process pools cannot ship the Spark engine's closure-based partition
        functions (no cloudpickle in this codebase), so the process backend
        answers with an in-process thread sibling; every other backend
        returns itself.
        """
        return self

    def shutdown(self) -> None:
        """Release pools and shared-memory segments; idempotent.

        Also clears the identity-keyed ``sizeof`` memo: its ``id()`` keys
        are only valid while this executor's payload objects (including
        re-attached shm views) are alive, and dropping them here prevents
        cross-run collisions after the interpreter reuses the addresses.
        """
        self.unpin_all()
        clear_sizeof_cache()

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- tracing helpers for concurrent backends -------------------------

    def _emit_dispatch(self, label: str, n_tasks: int, **attrs: Any) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "executor_dispatch",
                executor=self.name,
                workers=self.workers,
                label=label,
                n_tasks=n_tasks,
                **attrs,
            )

    def _emit_join(self, label: str, wall_seconds: list[float], started: float) -> None:
        wall = time.perf_counter() - started
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "executor_join",
                executor=self.name,
                workers=self.workers,
                label=label,
                n_tasks=len(wall_seconds),
                wall_s=wall,
                task_wall_s=[round(w, 6) for w in wall_seconds],
            )
        registry = get_registry()
        if registry.enabled:
            busy = sum(wall_seconds)
            registry.counter("spca_executor_batches_total", executor=self.name).inc()
            registry.counter("spca_executor_tasks_total", executor=self.name).inc(
                len(wall_seconds)
            )
            registry.counter(
                "spca_executor_busy_seconds_total", executor=self.name
            ).inc(busy)
            registry.counter(
                "spca_executor_wall_seconds_total", executor=self.name
            ).inc(wall)
            histogram = registry.histogram(
                "spca_executor_task_wall_seconds", executor=self.name
            )
            for task_wall in wall_seconds:
                histogram.observe(task_wall)
            if wall > 0:
                # occupancy of the last batch: busy worker-seconds over the
                # worker-seconds the pool had available while it ran
                registry.gauge("spca_executor_occupancy", executor=self.name).set(
                    busy / (wall * self.workers)
                )


def reraise_first_failure(
    errors: Sequence[tuple[int, BaseException]],
) -> None:
    """Raise the failure a serial loop would have hit first, if any."""
    if errors:
        index, error = min(errors, key=lambda pair: pair[0])
        raise error
