"""The process-pool executor: real multi-core execution.

Sidesteps the GIL entirely by running tasks in forked worker processes.
Dense blocks in the payloads do not travel through the pool's pickle pipe:
:mod:`repro.engine.exec.shm` swaps them for shared-memory references on the
way out and rebuilds zero-copy views on the worker side, so per-dispatch
cost is O(metadata), not O(data), and each distinct input block is copied
into shared memory exactly once per fit.

Tasks whose function or payload cannot be pickled (e.g. a locally-defined
mapper class in a test) fall back to in-process execution for that task --
the decision depends only on the payload, so it is deterministic across
runs.  The Spark engine never even submits its closure-based stages here:
``closure_executor()`` answers with a thread-pool sibling (see
``docs/engines.md``).
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

import repro.engine.exec.resident as resident
from repro.engine.exec.base import (
    TaskExecutor,
    default_worker_count,
    reraise_first_failure,
)
from repro.engine.exec.resident import ResidentPayloadRef
from repro.engine.serde import clear_sizeof_cache
from repro.engine.exec.shm import (
    DEFAULT_SHM_THRESHOLD,
    ShmBlockRegistry,
    decode_payload,
    encode_payload,
)
from repro.engine.exec.threads import ThreadPoolTaskExecutor
from repro.obs.metrics import get_registry


def _process_task(fn: Callable[[Any], Any], encoded: Any) -> tuple[Any, float]:
    """Worker-side entry point: attach shm views, run, and time the task."""
    payload = decode_payload(encoded)
    started = time.perf_counter()
    result = fn(payload)
    return result, time.perf_counter() - started


class ProcessPoolTaskExecutor(TaskExecutor):
    """Runs tasks on a lazily-created ``ProcessPoolExecutor``.

    Prefers the ``fork`` start method (workers inherit the parent's modules
    and the payloads' module-level task functions without re-import); falls
    back to the platform default where fork is unavailable.
    """

    name = "processes"

    def __init__(
        self,
        workers: int | None = None,
        shm_threshold: int = DEFAULT_SHM_THRESHOLD,
    ):
        super().__init__(workers=workers or default_worker_count())
        self.shm_threshold = shm_threshold
        self.registry = ShmBlockRegistry()
        self._pool: ProcessPoolExecutor | None = None
        self._thread_sibling: ThreadPoolTaskExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._pool

    def closure_executor(self) -> TaskExecutor:
        """A thread-pool sibling for tasks that cannot cross a pickle pipe."""
        if self._thread_sibling is None:
            self._thread_sibling = _ProcessFallbackThreads(self.workers)
        return self._thread_sibling

    def pin_payload(self, key: str, payload: Any) -> ResidentPayloadRef:
        """Pin a payload: driver store + one pickled blob in shared memory.

        The blob is the shm-encoded payload (dense blocks already replaced
        by array refs), so a worker that misses the fork-inherited store
        attaches one small segment, unpickles metadata, and rebuilds
        zero-copy views -- it never copies the data twice.
        """
        self.unpin_payload(key)
        encoded = encode_payload(payload, self.registry, self.shm_threshold)
        blob = pickle.dumps(encoded, protocol=pickle.HIGHEST_PROTOCOL)
        segment = self.registry.pin_segment(blob)
        ref = ResidentPayloadRef(
            key=key,
            generation=resident.next_generation(),
            segment=segment,
            nbytes=len(blob),
        )
        # Install the *original* object driver-side: the inline-fallback
        # path and any worker forked after this point resolve to it
        # directly, keeping pinned runs bitwise equal to unpinned ones.
        resident.install(key, ref.generation, payload)
        self._pins[key] = ref
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "spca_executor_pin_bytes_total", executor=self.name
            ).inc(len(blob))
        return ref

    def _release_pin(self, ref: ResidentPayloadRef) -> None:
        if ref.segment is not None:
            self.registry.unpin_segment(ref.segment)

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        label: str = "tasks",
    ) -> list[Any]:
        if not payloads:
            return []
        started = time.perf_counter()
        self._emit_dispatch(
            label, len(payloads), shm_threshold=self.shm_threshold
        )
        shm_requests_before = self.registry.requests
        encoded = [
            encode_payload(payload, self.registry, self.shm_threshold)
            for payload in payloads
        ]
        futures: list[Future | None] = []
        inline: dict[int, Any] = {}
        pool = self._ensure_pool()
        payload_bytes = 0
        for index, item in enumerate(encoded):
            try:
                # The probe doubles as the dispatch-bytes meter: this is
                # exactly what crosses the pool's pickle pipe per task, the
                # quantity worker residency is built to shrink.
                payload_bytes += len(
                    pickle.dumps((fn, item), protocol=pickle.HIGHEST_PROTOCOL)
                )
            except Exception:
                # Unpicklable task: run it in-process (shm views attach fine
                # in the owning process too).  Deterministic per payload.
                inline[index] = item
                futures.append(None)
                continue
            futures.append(pool.submit(_process_task, fn, item))
        registry = get_registry()
        if registry.enabled and payload_bytes:
            registry.counter(
                "spca_executor_payload_bytes_total", executor=self.name
            ).inc(payload_bytes)
        results: list[Any] = [None] * len(encoded)
        walls: list[float] = [0.0] * len(encoded)
        errors: list[tuple[int, BaseException]] = []
        for index, future in enumerate(futures):
            try:
                if future is None:
                    results[index], walls[index] = _process_task(
                        fn, inline[index]
                    )
                else:
                    results[index], walls[index] = future.result()
            except BrokenProcessPool:
                raise
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors.append((index, error))
        self._emit_join(label, walls, started)
        reraise_first_failure(errors)
        # Clear-on-commit for shm batches: the inline-fallback path attaches
        # zero-copy views in this process whose buffers die with the batch,
        # so sizes memoized against them must not survive into addresses a
        # later allocation may recycle.  Identity validation already makes a
        # stale hit impossible; clearing here also keeps the memo from
        # accumulating dead entries across an iterative fit's many batches.
        if self.registry.requests != shm_requests_before:
            clear_sizeof_cache()
        return results

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._thread_sibling is not None:
            self._thread_sibling.shutdown()
            self._thread_sibling = None
        self.registry.unlink_all()
        super().shutdown()


class _ProcessFallbackThreads(ThreadPoolTaskExecutor):
    """The thread sibling a process executor hands out for closure stages.

    Identical to ``threads`` except its dispatch events carry a
    ``fallback_from`` marker so traces show why a ``processes`` run executed
    a Spark stage in-process.
    """

    def _emit_dispatch(self, label: str, n_tasks: int, **attrs: Any) -> None:
        super()._emit_dispatch(
            label, n_tasks, fallback_from="processes", **attrs
        )
