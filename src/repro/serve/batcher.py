"""The async micro-batching front-end: PCA-as-a-service under load.

Thousands of concurrent single-row ``transform`` requests are individually
tiny -- the cost of serving them naively is pure dispatch overhead, the
same per-record tax the sPCA batch pipeline (PR 3) eliminated inside the
engines.  :class:`MicroBatcher` applies the same cure at the request layer:
concurrent requests against the same ``(model, version, op)`` are coalesced
into one stacked batch, computed once through the row-stable kernels and
the PR 5 executor layer, and scattered back to their awaiting futures.

Mechanics:

- ``submit`` enqueues the request's rows and (for the first request of a
  key) arms a coalescing timer of ``max_delay_s``; the queue flushes early
  once ``max_batch_rows`` rows have accumulated.
- A flush hands the batch to a single dispatcher thread, keeping the event
  loop free to keep admitting requests while kernels run.  Inside the
  dispatcher the batch goes through ``kernels.run_batch`` (optionally
  chunked across a ``threads``/``processes`` executor).
- **Backpressure**: admission fails fast with :class:`QueueFullError` once
  ``max_queue_rows`` rows are waiting.
- **Deadlines**: a request carrying ``deadline_s`` that is still queued
  when its batch dispatches fails with :class:`DeadlineExceededError`
  instead of burning compute on an answer nobody is waiting for.
- **Graceful shutdown**: ``close(drain=True)`` stops admission, flushes
  every queue, and awaits in-flight dispatches, so no accepted request is
  ever dropped.

Because every kernel is row-stable (see :mod:`repro.serve.kernels`), the
answer to a request is bit-identical with batching on or off, under any
executor, any neighbours, any chunking.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.errors import (
    DeadlineExceededError,
    QueueFullError,
    ServiceClosedError,
    ShapeError,
)
from repro.jobs.kernels import stack_blocks
from repro.obs import get_tracer
from repro.obs.metrics import get_registry as get_metrics
from repro.serve import kernels
from repro.serve.api import PCAService
from repro.serve.registry import LATEST


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs governing coalescing, backpressure, and deadlines.

    Attributes:
        max_batch_rows: flush a queue early once this many rows wait in it.
        max_delay_s: longest a request waits for neighbours before its
            queue flushes anyway (the latency the batcher may add).
        max_queue_rows: total rows admitted across all queues before
            ``submit`` fails fast with :class:`QueueFullError`.
        default_deadline_s: deadline applied to requests that do not carry
            their own; None means no deadline.
    """

    max_batch_rows: int = 256
    max_delay_s: float = 0.002
    max_queue_rows: int = 8192
    default_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch_rows < 1:
            raise ShapeError("max_batch_rows must be >= 1")
        if self.max_delay_s < 0:
            raise ShapeError("max_delay_s must be >= 0")
        if self.max_queue_rows < 1:
            raise ShapeError("max_queue_rows must be >= 1")


@dataclass
class _Pending:
    """One admitted request waiting in a queue."""

    rows: Any  # 2-D dense array or CSR block
    future: asyncio.Future
    enqueued: float
    deadline_at: float | None
    single: bool  # 1-D input; unwrap the result row


class MicroBatcher:
    """Coalesces concurrent requests into batches; see the module docstring.

    Args:
        service: the request layer to compute through (its registry,
            executor, and chunk size are reused).
        policy: coalescing/backpressure/deadline knobs.
        batching: False turns coalescing off -- every request dispatches
            alone through the identical machinery, the honest baseline the
            ``BENCH_serve`` suite compares against.
    """

    def __init__(
        self,
        service: PCAService,
        policy: BatchPolicy | None = None,
        batching: bool = True,
    ):
        self.service = service
        self.policy = policy or BatchPolicy()
        self.batching = batching
        self._queues: dict[tuple[str, str, str], list[_Pending]] = {}
        self._timers: dict[tuple[str, str, str], asyncio.TimerHandle] = {}
        self._queued_rows = 0
        self._inflight: set[asyncio.Future] = set()
        self._closed = False
        self._metrics_lock = threading.Lock()
        self._dispatcher = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-dispatch"
        )
        # Tallies the load generator reads after a run (loop thread only).
        self.batches_dispatched = 0
        self.requests_rejected = 0
        self.requests_expired = 0

    async def __aenter__(self) -> "MicroBatcher":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # -- admission --------------------------------------------------------

    async def submit(
        self,
        op: str,
        name: str,
        rows: Any,
        version: str = LATEST,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Serve *rows* against ``name@version``; awaits the result.

        Raises:
            ServiceClosedError: the batcher is closed or draining.
            QueueFullError: backpressure -- too many rows already queued.
            DeadlineExceededError: the request expired before dispatch.
            ShapeError: bad op or row shapes.
        """
        if self._closed:
            raise ServiceClosedError("serving front-end is closed")
        if op not in kernels.OPS:
            raise ShapeError(
                f"unknown serve op {op!r}; expected one of {kernels.OPS}"
            )
        single = not sp.issparse(rows) and np.asarray(rows).ndim == 1
        batch = PCAService.as_batch(rows)
        n_rows = batch.shape[0]
        if self._queued_rows + n_rows > self.policy.max_queue_rows:
            self.requests_rejected += 1
            self._count_request(op, "rejected")
            raise QueueFullError(
                f"serve queue full: {self._queued_rows} rows queued, "
                f"request adds {n_rows}, limit {self.policy.max_queue_rows}"
            )
        resolved = self.service.resolve(name, version)
        loop = asyncio.get_running_loop()
        if deadline_s is None:
            deadline_s = self.policy.default_deadline_s
        now = time.perf_counter()
        pending = _Pending(
            rows=batch,
            future=loop.create_future(),
            enqueued=now,
            deadline_at=None if deadline_s is None else now + deadline_s,
            single=single,
        )
        key = (name, resolved, op)
        queue = self._queues.setdefault(key, [])
        queue.append(pending)
        self._queued_rows += n_rows
        self._set_depth_gauge()
        if not self.batching or sum(p.rows.shape[0] for p in queue) >= (
            self.policy.max_batch_rows
        ):
            self._flush(key)
        elif key not in self._timers:
            self._timers[key] = loop.call_later(
                self.policy.max_delay_s, self._flush, key
            )
        return await pending.future

    # -- flushing / dispatch ----------------------------------------------

    def _flush(self, key: tuple[str, str, str]) -> None:
        """Move a queue's pending requests to the dispatcher thread."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        batch = self._queues.pop(key, None)
        if not batch:
            return
        self._queued_rows -= sum(p.rows.shape[0] for p in batch)
        self._set_depth_gauge()
        loop = asyncio.get_running_loop()
        handle = loop.run_in_executor(
            self._dispatcher, self._dispatch, key, batch, loop
        )
        self._inflight.add(handle)
        handle.add_done_callback(lambda done: self._dispatched(done, batch))

    def _dispatched(self, handle: asyncio.Future, batch: list[_Pending]) -> None:
        """Loop-thread cleanup after a dispatch finishes."""
        self._inflight.discard(handle)
        exc = handle.exception() if not handle.cancelled() else None
        if exc is not None:
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)

    def _dispatch(
        self,
        key: tuple[str, str, str],
        batch: list[_Pending],
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        """Dispatcher thread: expire, stack, compute, scatter."""
        name, version, op = key
        dispatch_start = time.perf_counter()
        live: list[_Pending] = []
        for pending in batch:
            if pending.deadline_at is not None and (
                pending.deadline_at < dispatch_start
            ):
                self._count_request(op, "deadline")
                waited = dispatch_start - pending.enqueued
                self._resolve(
                    loop,
                    pending.future,
                    error=DeadlineExceededError(
                        f"request deadline expired after {waited * 1e3:.2f}ms "
                        f"in queue (op={op}, model={name}@{version})"
                    ),
                )
            else:
                live.append(pending)
        if not live:
            return
        model = self.service.model(name, version)
        # Dense and sparse requests take different (but each row-stable)
        # kernel paths; stacking them together would densify sparse rows
        # and change their bits, so each group computes separately.
        groups = [
            [p for p in live if sp.issparse(p.rows)],
            [p for p in live if not sp.issparse(p.rows)],
        ]
        tracer = get_tracer()
        for group in groups:
            if not group:
                continue
            stacked = stack_blocks([p.rows for p in group])
            if tracer.enabled:
                with tracer.span(
                    "task",
                    f"serve.batch/{op}",
                    model=name,
                    version=version,
                    requests=len(group),
                    rows=stacked.shape[0],
                ):
                    outputs = kernels.run_batch(
                        model, op, stacked,
                        self.service.executor, self.service.chunk_rows,
                    )
                tracer.event(
                    "serve_batch", op=op, model=name,
                    requests=len(group), rows=stacked.shape[0],
                )
            else:
                outputs = kernels.run_batch(
                    model, op, stacked,
                    self.service.executor, self.service.chunk_rows,
                )
            completed = time.perf_counter()
            offset = 0
            for pending in group:
                n = pending.rows.shape[0]
                result = outputs[offset : offset + n]
                offset += n
                if pending.single and op != "score":
                    result = result[0]
                self._count_request(
                    op, "ok",
                    wait_s=dispatch_start - pending.enqueued,
                    total_s=completed - pending.enqueued,
                    rows=n,
                )
                self._resolve(loop, pending.future, value=result)
            with self._metrics_lock:
                metrics = get_metrics()
                if metrics.enabled:
                    metrics.counter("spca_serve_batches_total", op=op).inc()
                    metrics.histogram("spca_serve_batch_rows", op=op).observe(
                        stacked.shape[0]
                    )
        self.batches_dispatched += sum(1 for group in groups if group)

    # -- completion plumbing ----------------------------------------------

    @staticmethod
    def _resolve(
        loop: asyncio.AbstractEventLoop,
        future: asyncio.Future,
        value: Any = None,
        error: BaseException | None = None,
    ) -> None:
        """Complete *future* from the dispatcher thread, tolerating cancels."""

        def apply() -> None:
            if future.done():
                return
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(value)

        loop.call_soon_threadsafe(apply)

    def _count_request(
        self,
        op: str,
        outcome: str,
        wait_s: float | None = None,
        total_s: float | None = None,
        rows: int | None = None,
    ) -> None:
        if outcome == "deadline":
            self.requests_expired += 1
        with self._metrics_lock:
            metrics = get_metrics()
            if not metrics.enabled:
                return
            metrics.counter(
                "spca_serve_requests_total", op=op, outcome=outcome
            ).inc()
            if rows is not None:
                metrics.counter("spca_serve_rows_total", op=op).inc(rows)
            if wait_s is not None:
                metrics.histogram(
                    "spca_serve_queue_wait_seconds", op=op
                ).observe(wait_s)
            if total_s is not None:
                metrics.histogram(
                    "spca_serve_request_seconds", op=op
                ).observe(total_s)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "serve_request", op=op, outcome=outcome,
                wait_s=wait_s, total_s=total_s, rows=rows,
            )

    def _set_depth_gauge(self) -> None:
        with self._metrics_lock:
            metrics = get_metrics()
            if metrics.enabled:
                metrics.gauge("spca_serve_queue_depth_rows").set(
                    self._queued_rows
                )

    # -- shutdown ---------------------------------------------------------

    async def close(self, drain: bool = True) -> None:
        """Stop admission; drain or fail pending work; join the dispatcher.

        With ``drain=True`` (default) every queued request is flushed and
        every in-flight batch awaited -- accepted work always completes.
        With ``drain=False`` queued requests fail with
        :class:`ServiceClosedError`; in-flight batches are still awaited
        (their results stand).
        """
        self._closed = True
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        keys = list(self._queues)
        if drain:
            for key in keys:
                self._flush(key)
        else:
            for key in keys:
                for pending in self._queues.pop(key, []):
                    if not pending.future.done():
                        pending.future.set_exception(
                            ServiceClosedError("serving front-end closed")
                        )
            self._queued_rows = 0
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._dispatcher.shutdown(wait=True)
