"""Dataset storage: npz archives and a text row format.

Two representations:

- **npz** (:func:`save_matrix` / :func:`load_matrix`): binary, exact,
  sparse- and dense-aware.  The format stores CSR components for sparse
  matrices and the raw array for dense ones.
- **sparse row text** (:func:`write_sparse_rows` / :func:`read_sparse_rows`):
  one line per row, ``index:value`` pairs separated by spaces -- the
  interchange format the original sPCA used for its HDFS inputs, useful for
  eyeballing data and for feeding the simulated HDFS.
"""

from __future__ import annotations

import pathlib
from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix

_FORMAT_VERSION = 1


def save_matrix(matrix: Matrix, path: str | pathlib.Path) -> pathlib.Path:
    """Write a sparse or dense matrix to an ``.npz`` archive."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        np.savez_compressed(
            path,
            format_version=np.int64(_FORMAT_VERSION),
            kind="csr",
            data=csr.data,
            indices=csr.indices,
            indptr=csr.indptr,
            shape=np.asarray(csr.shape, dtype=np.int64),
        )
    else:
        np.savez_compressed(
            path,
            format_version=np.int64(_FORMAT_VERSION),
            kind="dense",
            values=np.asarray(matrix, dtype=np.float64),
        )
    return path


def load_matrix(path: str | pathlib.Path) -> Matrix:
    """Read a matrix written by :func:`save_matrix`."""
    with np.load(path, allow_pickle=False) as archive:
        if "kind" not in archive.files:
            raise ShapeError("matrix archive is missing its 'kind' field")
        kind = str(archive["kind"])
        if kind == "csr":
            return sp.csr_matrix(
                (archive["data"], archive["indices"], archive["indptr"]),
                shape=tuple(archive["shape"]),
            )
        if kind == "dense":
            return np.asarray(archive["values"])
        raise ShapeError(f"unknown matrix kind: {kind!r}")


def write_sparse_rows(matrix: Matrix, path: str | pathlib.Path) -> pathlib.Path:
    """Write one text line per row: ``col:value`` pairs, space separated.

    Dense matrices are written in the same format (all entries explicit),
    which round-trips but is wasteful -- the format exists for sparse data.
    """
    path = pathlib.Path(path)
    csr = matrix.tocsr() if sp.issparse(matrix) else sp.csr_matrix(np.asarray(matrix))
    with path.open("w") as handle:
        handle.write(f"# rows={csr.shape[0]} cols={csr.shape[1]}\n")
        for i in range(csr.shape[0]):
            lo, hi = csr.indptr[i], csr.indptr[i + 1]
            pairs = " ".join(
                f"{col}:{value:.17g}"
                for col, value in zip(csr.indices[lo:hi], csr.data[lo:hi])
            )
            handle.write(pairs + "\n")
    return path


def read_sparse_rows(path: str | pathlib.Path) -> sp.csr_matrix:
    """Read a matrix written by :func:`write_sparse_rows`."""
    path = pathlib.Path(path)
    with path.open() as handle:
        header = handle.readline()
        if not header.startswith("#"):
            raise ShapeError(f"{path}: missing '# rows=... cols=...' header")
        try:
            fields = dict(
                part.split("=") for part in header[1:].split() if "=" in part
            )
            n_rows = int(fields["rows"])
            n_cols = int(fields["cols"])
        except (KeyError, ValueError) as exc:
            raise ShapeError(f"{path}: malformed header {header!r}") from exc
        data: list[float] = []
        indices: list[int] = []
        indptr = [0]
        for line_number, line in enumerate(handle, start=2):
            for pair in line.split():
                col_text, _, value_text = pair.partition(":")
                try:
                    indices.append(int(col_text))
                    data.append(float(value_text))
                except ValueError as exc:
                    raise ShapeError(
                        f"{path}:{line_number}: malformed entry {pair!r}"
                    ) from exc
            indptr.append(len(data))
    if len(indptr) - 1 != n_rows:
        raise ShapeError(
            f"{path}: header promised {n_rows} rows, found {len(indptr) - 1}"
        )
    return sp.csr_matrix(
        (np.asarray(data), np.asarray(indices, dtype=np.int64), np.asarray(indptr)),
        shape=(n_rows, n_cols),
    )


def rows_to_hdfs_records(matrix: Matrix, num_blocks: int) -> Iterable[tuple[int, Matrix]]:
    """Convert a matrix into the (start_row, block) records the engines use."""
    from repro.linalg.blocks import partition_rows

    return [(block.start, block.data) for block in partition_rows(matrix, num_blocks)]
