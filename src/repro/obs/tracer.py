"""The span tracer: hierarchical spans + typed events on two clocks.

Every span carries *two* timestamps: the wall clock of the simulating
process (``wall_t0``/``wall_dur``, useful for profiling the simulator
itself) and the **simulated cluster clock** (``t0``/``dur``), which is the
clock the paper's evaluation is expressed in.  The tracer owns the simulated
clock as a monotone cursor (:attr:`Tracer.sim_now`): engines advance it by
recording finished jobs (:meth:`Tracer.record_job`), and driver-side spans
opened with :meth:`Tracer.span` take their simulated interval from the
cursor positions at entry and exit.  A ``run -> iteration -> job -> phase ->
task`` hierarchy therefore falls out without any component knowing about the
others.

The module is dependency-free (stdlib only) and the process-wide tracer
(:func:`get_tracer`) is a no-op unless explicitly enabled: instrumentation
sites guard trace construction behind ``tracer.enabled`` so a disabled
tracer costs one attribute check.

Span kinds
----------

========== ==============================================================
``run``     one ``fit`` (driver wall-clock scope)
``iteration`` one EM iteration, carrying objective/convergence telemetry
``job``     one distributed job / Spark stage (advances the sim cursor)
``phase``   a timeline segment inside a job (map, shuffle, reduce, ...)
``task``    one task attempt placed on a concrete execution slot
========== ==============================================================

Event types
-----------

``shuffle``, ``hdfs_read``, ``hdfs_write``, ``broadcast``,
``driver_collect``, ``task_retry``, ``speculative_kill``, ``cache_hit``,
``cache_put``, ``cache_evict`` -- plus the fault-tolerance vocabulary:
``fault_injected`` (any injected fault firing), ``lineage_recompute`` (a
lost cached partition recomputed from its ancestry), ``job_retry`` /
``backoff_wait`` (job-chain retries), and ``checkpoint_write`` /
``checkpoint_restore`` (EM model state persisted/restored).  Each is
stamped with both clocks and a byte payload where applicable.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

SPAN_KINDS = ("run", "iteration", "job", "phase", "task")

EVENT_TYPES = (
    "shuffle",
    "hdfs_read",
    "hdfs_write",
    "broadcast",
    "driver_collect",
    "task_retry",
    "speculative_kill",
    "cache_hit",
    "cache_put",
    "cache_evict",
    "fault_injected",
    "lineage_recompute",
    "job_retry",
    "backoff_wait",
    "checkpoint_write",
    "checkpoint_restore",
    "executor_dispatch",
    "executor_join",
    "serve_request",
    "serve_batch",
)


@dataclass
class SpanRecord:
    """One finished (or still-open) span.

    Attributes:
        span_id: unique id within the tracer (1-based, allocation order).
        parent_id: enclosing span's id, or None for roots.
        kind: one of :data:`SPAN_KINDS`.
        name: display name.
        t0: simulated-clock start (seconds).
        dur: simulated-clock duration (seconds).
        wall_t0: wall-clock start, relative to the tracer's origin.
        wall_dur: wall-clock duration.
        track: execution slot index for ``task`` spans, None otherwise.
        attrs: free-form payload (byte counts, objective values, ...).
    """

    span_id: int
    parent_id: int | None
    kind: str
    name: str
    t0: float
    dur: float
    wall_t0: float
    wall_dur: float
    track: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (usable while it is open)."""
        self.attrs.update(attrs)


@dataclass
class EventRecord:
    """One instantaneous typed event."""

    event_id: int
    parent_id: int | None
    type: str
    t: float
    wall_t: float
    attrs: dict[str, Any] = field(default_factory=dict)


class _NoopSpan:
    """Returned by a disabled tracer; swallows attribute updates."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


# -- job trace: what an engine hands the tracer for one finished job --------


@dataclass
class TaskTrace:
    """One task's placement on the simulated cluster.

    ``start`` is the simulated offset from its phase start; ``slot`` is the
    execution slot (core) the scheduler placed the task on.
    ``wall_seconds`` is the measured driver wall time of the task's compute
    (before cost-model scaling); 0.0 when the engine did not measure it.
    """

    task_id: int
    slot: int
    start: float
    duration: float
    retries: int = 0
    speculative_kill: bool = False
    wall_seconds: float = 0.0


@dataclass
class PhaseTrace:
    """One segment of a job's simulated timeline (offset from job start)."""

    name: str
    start: float
    duration: float
    tasks: list[TaskTrace] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class EventTrace:
    """A typed event at a simulated offset from its job's start."""

    type: str
    offset: float
    attrs: dict[str, Any] = field(default_factory=dict)


_STATS_ATTRS = (
    "n_map_tasks",
    "n_reduce_tasks",
    "map_output_bytes",
    "shuffle_bytes",
    "output_bytes",
    "output_is_intermediate",
    "hdfs_read_bytes",
    "hdfs_write_bytes",
    "driver_result_bytes",
    "broadcast_bytes",
    "task_retries",
    "recovery_sim_seconds",
    "faults",
    "intermediate_bytes",
)


@dataclass
class JobTrace:
    """Everything the tracer needs to materialize one job's subtree."""

    name: str
    sim_duration: float
    wall_duration: float = 0.0
    phases: list[PhaseTrace] = field(default_factory=list)
    events: list[EventTrace] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_stats(cls, stats: Any, phases: list[PhaseTrace] | None = None,
                   events: list[EventTrace] | None = None) -> "JobTrace":
        """Build a trace from a ``JobStats``-shaped object.

        Duck-typed on purpose: ``repro.obs`` stays importable without the
        engine package, and the copied attribute list doubles as the schema
        the reconciliation check (:func:`repro.obs.report.reconcile`) relies
        on.
        """
        attrs = {key: getattr(stats, key) for key in _STATS_ATTRS}
        return cls(
            name=stats.name,
            sim_duration=stats.sim_seconds,
            wall_duration=stats.wall_seconds,
            phases=phases or [],
            events=events or [],
            attrs=attrs,
        )


class TraceListener:
    """Optional base class for tracer listeners; every hook is a no-op.

    Listeners see records exactly once, at the moment they are *final*:
    driver-side spans at close (attributes fully set), driver-side events
    as they fire, and a recorded job's whole subtree in one
    :meth:`on_job` call.  This is the feed both the streaming JSONL
    writer and the live dashboard run on -- duck-typed, so any object with
    a matching method works.
    """

    def on_span_start(self, span: SpanRecord) -> None:
        pass

    def on_span_end(self, span: SpanRecord) -> None:
        pass

    def on_event(self, event: EventRecord) -> None:
        pass

    def on_job(
        self, spans: list[SpanRecord], events: list[EventRecord]
    ) -> None:
        """A finished job subtree; ``spans[0]`` is the job span itself."""


class Tracer:
    """Collects spans and events for one traced scope.

    Args:
        enabled: when False every method is a no-op and nothing allocates.
        retain: when False, finished records are handed to listeners but
            never stored on :attr:`spans`/:attr:`events` -- O(1) memory for
            arbitrarily long runs (used by streaming export and ``--live``).
    """

    def __init__(self, enabled: bool = True, retain: bool = True):
        self.enabled = enabled
        self.retain = retain
        self.sim_now = 0.0
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self._stack: list[SpanRecord] = []
        self._listeners: list[Any] = []
        self._next_id = 1
        self._wall_origin = time.perf_counter()

    # -- internals -------------------------------------------------------

    def _wall(self) -> float:
        return time.perf_counter() - self._wall_origin

    def _new_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _current_parent(self) -> int | None:
        return self._stack[-1].span_id if self._stack else None

    # -- listeners --------------------------------------------------------

    def add_listener(self, listener: Any) -> None:
        """Subscribe *listener* (see :class:`TraceListener`) to this tracer."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Any) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, method: str, *args: Any) -> None:
        for listener in self._listeners:
            handler = getattr(listener, method, None)
            if handler is not None:
                handler(*args)

    # -- driver-side spans ------------------------------------------------

    @contextmanager
    def span(self, kind: str, name: str, **attrs: Any) -> Iterator[Any]:
        """Open a driver-side span; simulated interval comes from the cursor.

        The span's ``t0`` is the cursor at entry and its ``dur`` is however
        far jobs recorded inside the ``with`` block advanced the cursor.
        """
        if not self.enabled:
            yield _NOOP_SPAN
            return
        record = SpanRecord(
            span_id=self._new_id(),
            parent_id=self._current_parent(),
            kind=kind,
            name=name,
            t0=self.sim_now,
            dur=0.0,
            wall_t0=self._wall(),
            wall_dur=0.0,
            attrs=dict(attrs),
        )
        if self.retain:
            self.spans.append(record)
        self._stack.append(record)
        if self._listeners:
            self._notify("on_span_start", record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.dur = self.sim_now - record.t0
            record.wall_dur = self._wall() - record.wall_t0
            if self._listeners:
                self._notify("on_span_end", record)

    # -- events -----------------------------------------------------------

    def event(self, type: str, **attrs: Any) -> None:
        """Record an instantaneous event at the current cursor position."""
        if not self.enabled:
            return
        record = EventRecord(
            event_id=self._new_id(),
            parent_id=self._current_parent(),
            type=type,
            t=self.sim_now,
            wall_t=self._wall(),
            attrs=attrs,
        )
        if self.retain:
            self.events.append(record)
        if self._listeners:
            self._notify("on_event", record)

    # -- engine-side job recording ----------------------------------------

    def record_job(self, trace: JobTrace) -> None:
        """Materialize a finished job's subtree and advance the sim cursor.

        The job span's duration is taken verbatim from
        ``trace.sim_duration`` (the same float the engine put into its
        ``JobStats``), which is what makes trace totals reconcile *exactly*
        with :class:`repro.engine.metrics.EngineMetrics`.
        """
        if not self.enabled:
            return
        t0 = self.sim_now
        wall_now = self._wall()
        new_spans: list[SpanRecord] = []
        new_events: list[EventRecord] = []
        job_span = SpanRecord(
            span_id=self._new_id(),
            parent_id=self._current_parent(),
            kind="job",
            name=trace.name,
            t0=t0,
            dur=trace.sim_duration,
            wall_t0=max(0.0, wall_now - trace.wall_duration),
            wall_dur=trace.wall_duration,
            attrs=dict(trace.attrs),
        )
        new_spans.append(job_span)
        for phase in trace.phases:
            phase_span = SpanRecord(
                span_id=self._new_id(),
                parent_id=job_span.span_id,
                kind="phase",
                name=phase.name,
                t0=t0 + phase.start,
                dur=phase.duration,
                wall_t0=wall_now,
                wall_dur=0.0,
                attrs=dict(phase.attrs),
            )
            new_spans.append(phase_span)
            for task in phase.tasks:
                task_t0 = phase_span.t0 + task.start
                task_span = SpanRecord(
                    span_id=self._new_id(),
                    parent_id=phase_span.span_id,
                    kind="task",
                    name=f"{trace.name}/{phase.name}[{task.task_id}]",
                    t0=task_t0,
                    dur=task.duration,
                    wall_t0=wall_now,
                    wall_dur=0.0,
                    track=task.slot,
                    attrs={"task_id": task.task_id, "retries": task.retries},
                )
                if task.wall_seconds:
                    task_span.attrs["wall_s"] = task.wall_seconds
                new_spans.append(task_span)
                if task.retries:
                    new_events.append(
                        EventRecord(
                            event_id=self._new_id(),
                            parent_id=task_span.span_id,
                            type="task_retry",
                            t=task_t0,
                            wall_t=wall_now,
                            attrs={"task_id": task.task_id, "retries": task.retries},
                        )
                    )
                if task.speculative_kill:
                    new_events.append(
                        EventRecord(
                            event_id=self._new_id(),
                            parent_id=task_span.span_id,
                            type="speculative_kill",
                            t=task_t0 + task.duration,
                            wall_t=wall_now,
                            attrs={"task_id": task.task_id},
                        )
                    )
        for event in trace.events:
            new_events.append(
                EventRecord(
                    event_id=self._new_id(),
                    parent_id=job_span.span_id,
                    type=event.type,
                    t=t0 + event.offset,
                    wall_t=wall_now,
                    attrs=dict(event.attrs),
                )
            )
        if self.retain:
            self.spans.extend(new_spans)
            self.events.extend(new_events)
        self.sim_now = t0 + trace.sim_duration
        if self._listeners:
            self._notify("on_job", new_spans, new_events)


def record_job_stats(
    metrics: Any,
    stats: Any,
    events: list[EventTrace] | None = None,
    phase_name: str = "driver",
) -> None:
    """Record *stats* into *metrics* AND the process tracer, as one job.

    For driver-side jobs that are accounted directly (broadcasts, HDFS
    round-trips, locally-executed steps) rather than through an engine's
    job executor.  Pairing the two records here is what keeps the
    every-metrics-job-has-a-trace-span invariant that
    :func:`repro.obs.report.reconcile` checks.
    """
    metrics.record(stats)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.record_job(
            JobTrace.from_stats(
                stats,
                phases=[PhaseTrace(phase_name, 0.0, stats.sim_seconds)],
                events=list(events or []),
            )
        )


# -- process-wide tracer ----------------------------------------------------

_DISABLED = Tracer(enabled=False)
_tracer: Tracer = _DISABLED


def get_tracer() -> Tracer:
    """The process-wide tracer (a shared disabled one by default)."""
    return _tracer


def set_tracer(tracer: Tracer) -> None:
    """Install *tracer* as the process-wide tracer."""
    global _tracer
    _tracer = tracer


@contextmanager
def tracing(enabled: bool = True, retain: bool = True) -> Iterator[Tracer]:
    """Install a fresh tracer for the duration of the block."""
    previous = get_tracer()
    tracer = Tracer(enabled=enabled, retain=retain)
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
