"""Simulated wall-clock model.

The engines execute everything in one Python process, but they *measure* the
compute time of each simulated task and then reconstruct what a cluster
would have taken: task times are scheduled onto ``total_cores`` slots with a
longest-processing-time greedy (a standard 4/3-approximation of makespan,
and a good model of Hadoop/Spark slot scheduling), and every byte that moves
is charged at the configured bandwidth.

Two calibrated cost profiles are provided.  Their *absolute* values are
arbitrary (we are not claiming to predict EC2 seconds); what matters for the
reproduction is the *relative* structure the paper leans on:

- Hadoop pays a multi-second fixed overhead per job and materializes all
  map output and job output through disk (Section 5.2: "the overheads of the
  Hadoop framework and job initialization have a larger relative impact...").
- Spark pays a tiny per-job overhead and moves intermediate data through
  memory/network only.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ShapeError


@dataclass(frozen=True)
class CostModel:
    """Bandwidths and overheads that convert work into simulated seconds.

    Attributes:
        per_job_overhead_s: fixed job submission/initialization latency.
        per_task_overhead_s: per-task scheduling/launch latency.
        network_bytes_per_s: aggregate cluster network bandwidth.
        disk_bytes_per_s: aggregate disk bandwidth.
        compute_scale: multiplier applied to measured task compute seconds
            (models slower/faster worker CPUs relative to the simulating
            machine).
    """

    per_job_overhead_s: float
    per_task_overhead_s: float
    network_bytes_per_s: float
    disk_bytes_per_s: float
    compute_scale: float = 1.0

    def network_seconds(self, num_bytes: int) -> float:
        return num_bytes / self.network_bytes_per_s

    def disk_seconds(self, num_bytes: int) -> float:
        return num_bytes / self.disk_bytes_per_s


HADOOP_LIKE_COSTS = CostModel(
    per_job_overhead_s=5.0,
    per_task_overhead_s=0.2,
    network_bytes_per_s=1.0 * 1024**3,
    disk_bytes_per_s=200.0 * 1024**2,
)

SPARK_LIKE_COSTS = CostModel(
    per_job_overhead_s=0.15,
    per_task_overhead_s=0.005,
    network_bytes_per_s=1.0 * 1024**3,
    disk_bytes_per_s=200.0 * 1024**2,
)


def apply_speculative_execution(task_seconds, straggler_factor: float = 3.0):
    """Cap straggler tasks at a multiple of the stage's median task time.

    Both Hadoop and Spark launch speculative duplicates of tasks that run
    far behind their peers, so a single slow attempt does not set the stage
    time.  The simulator models this by capping each task's contribution at
    ``straggler_factor`` times the median -- which also keeps one-off
    timing hiccups of the *simulating* process (GC pauses etc.) from
    polluting the simulated timeline.
    """
    if straggler_factor <= 1.0:
        raise ShapeError(
            f"straggler_factor must be > 1, got {straggler_factor}"
        )
    durations = [float(t) for t in task_seconds]
    if len(durations) < 3:
        return durations
    ordered = sorted(durations)
    median = ordered[len(ordered) // 2]
    ceiling = straggler_factor * median
    return [min(duration, ceiling) for duration in durations]


def schedule_makespan(task_seconds, slots: int) -> float:
    """Makespan of greedily scheduling tasks onto *slots* parallel slots.

    Longest-processing-time-first: sort descending, always assign to the
    least-loaded slot.  Returns the maximum slot load, i.e. how long the
    phase takes on the cluster.
    """
    if slots < 1:
        raise ShapeError(f"slots must be >= 1, got {slots}")
    durations = sorted((float(t) for t in task_seconds), reverse=True)
    if not durations:
        return 0.0
    loads = [0.0] * min(slots, len(durations))
    heapq.heapify(loads)
    for duration in durations:
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + duration)
    return max(loads)
