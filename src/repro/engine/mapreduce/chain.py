"""Chaining multiple MapReduce jobs into a pipeline.

Multi-job algorithms (Mahout's SSVD runs 4+ jobs per pass; sPCA runs 2 per
iteration) hand each job's output to the next through the distributed
filesystem.  :class:`JobChain` automates the plumbing: every intermediate
output is written to a generated HDFS path, charged as intermediate data,
and fed to the next job as its input.

Chains can also retry a failed job with exponential backoff, the way a real
Hadoop workflow manager (Oozie and friends) resubmits a failed stage: a job
that exhausts its task attempts is waited out and resubmitted up to
``max_job_attempts`` times, with every backoff wait charged to the
simulated clock and emitted as ``job_retry``/``backoff_wait`` trace events.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

from repro.engine.mapreduce.api import MapReduceJob
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.metrics import JobStats
from repro.errors import InvalidPlanError, JobFailedError
from repro.obs import EventTrace, record_job_stats

Pair = tuple[Any, Any]


class JobChain:
    """A linear pipeline of MapReduce jobs.

    Args:
        runtime: the engine the chain submits jobs to.
        name: prefix for auto-generated intermediate output paths.
        max_job_attempts: how many times each job is submitted before its
            :class:`~repro.errors.JobFailedError` propagates (1 = the
            historical no-retry behaviour).
        backoff_base_s: simulated seconds waited before the first resubmit.
        backoff_factor: multiplier applied to the wait per further resubmit
            (wait = base * factor ** (attempt - 1)).

    Example:
        >>> chain = JobChain(runtime, name="ssvd")     # doctest: +SKIP
        >>> chain.then(sketch_job).then(bt_job)        # doctest: +SKIP
        >>> output = chain.run(input_splits)           # doctest: +SKIP
    """

    def __init__(
        self,
        runtime: MapReduceRuntime,
        name: str = "chain",
        max_job_attempts: int = 1,
        backoff_base_s: float = 30.0,
        backoff_factor: float = 2.0,
    ):
        if max_job_attempts < 1:
            raise InvalidPlanError(
                f"max_job_attempts must be >= 1, got {max_job_attempts}"
            )
        if backoff_base_s < 0.0:
            raise InvalidPlanError(
                f"backoff_base_s must be >= 0, got {backoff_base_s}"
            )
        if backoff_factor < 1.0:
            raise InvalidPlanError(
                f"backoff_factor must be >= 1, got {backoff_factor}"
            )
        self.runtime = runtime
        self.name = name
        self.max_job_attempts = max_job_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self._jobs: list[MapReduceJob] = []

    def then(self, job: MapReduceJob) -> "JobChain":
        """Append a job; returns self for fluent chaining."""
        self._jobs.append(job)
        return self

    @property
    def jobs(self) -> Sequence[MapReduceJob]:
        return tuple(self._jobs)

    def run(self, input_data: str | Sequence[Sequence[Pair]]) -> list[Pair]:
        """Execute the chain; returns the final job's output records.

        Every non-final job gets an auto-generated ``output_path`` (unless it
        already has one) marked as intermediate, and the next job reads that
        path -- charging the HDFS round trip exactly as a real Hadoop
        pipeline would.
        """
        if not self._jobs:
            raise InvalidPlanError("job chain is empty")
        current: str | Sequence[Sequence[Pair]] = input_data
        output: list[Pair] = []
        for index, job in enumerate(self._jobs):
            is_last = index == len(self._jobs) - 1
            if not is_last and job.output_path is None:
                job = replace(
                    job,
                    output_path=f"{self.name}/stage-{index}/{job.name}",
                    output_is_intermediate=True,
                )
            output = self._run_with_retry(job, current)
            current = job.output_path if job.output_path else [output]
        return output

    def _run_with_retry(
        self, job: MapReduceJob, input_data: str | Sequence[Sequence[Pair]]
    ) -> list[Pair]:
        for attempt in range(1, self.max_job_attempts + 1):
            try:
                return self.runtime.run(job, input_data)
            except JobFailedError:
                if attempt == self.max_job_attempts:
                    raise
                self._charge_backoff(job, attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def _charge_backoff(self, job: MapReduceJob, attempt: int) -> None:
        """Charge one backoff wait to the clock and record the resubmission.

        A partially-written output of the failed submission is deleted first,
        as a resubmitted Hadoop job clears its output directory.
        """
        if job.output_path is not None and self.runtime.hdfs.exists(job.output_path):
            self.runtime.hdfs.delete(job.output_path)
        wait = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        stats = JobStats(name=f"{job.name}[backoff]", sim_seconds=wait)
        stats.count_fault("job_retry")
        record_job_stats(
            self.runtime.metrics, stats, phase_name="backoff wait",
            events=[
                EventTrace("job_retry", 0.0, {"job": job.name, "attempt": attempt}),
                EventTrace("backoff_wait", wait, {"seconds": wait, "job": job.name}),
            ],
        )
