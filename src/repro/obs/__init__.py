"""repro.obs: span tracing, metrics, timeline export, and run telemetry.

A zero-dependency observability layer for the simulated distributed
engines.  Spans form a ``run -> iteration -> job -> phase -> task``
hierarchy, typed events capture data movement (shuffle, HDFS, broadcast,
driver collect) and scheduling incidents (retries, speculative kills,
cache hits/evictions), and everything is stamped with both the wall clock
and the simulated cluster clock.  On top of the trace sit:

- :mod:`repro.obs.metrics` -- a counters/gauges/histograms registry with
  mergeable snapshots and Prometheus text export;
- :mod:`repro.obs.analyze` -- critical paths, straggler attribution, and
  trace diffs;
- :mod:`repro.obs.live` -- the ``fit --live`` in-terminal dashboard;
- :mod:`repro.obs.report` -- text tables and the self-contained HTML
  report.

See ``docs/observability.md`` and ``docs/metrics.md``.

Typical use::

    from repro.obs import collecting, tracing
    from repro.obs.export import write_trace

    with tracing() as tracer, collecting() as registry:
        model, history = SPCA(config, backend).fit(data)
    write_trace(tracer, "fit.trace.json")   # open in https://ui.perfetto.dev
    snapshot = registry.snapshot()
"""

from repro.obs.export import (
    JsonlTraceWriter,
    TraceData,
    load_trace,
    load_trace_lenient,
    write_trace,
)
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    collecting,
    get_registry,
    load_snapshot,
    merge_snapshots,
    parse_prometheus,
    set_registry,
    to_prometheus,
    write_snapshot,
)
from repro.obs.tracer import (
    EVENT_TYPES,
    SPAN_KINDS,
    EventRecord,
    EventTrace,
    JobTrace,
    PhaseTrace,
    SpanRecord,
    TaskTrace,
    TraceListener,
    Tracer,
    get_tracer,
    record_job_stats,
    set_tracer,
    tracing,
)

__all__ = [
    "EVENT_TYPES",
    "METRICS_SCHEMA",
    "SPAN_KINDS",
    "EventRecord",
    "EventTrace",
    "JobTrace",
    "JsonlTraceWriter",
    "MetricsRegistry",
    "PhaseTrace",
    "SpanRecord",
    "TaskTrace",
    "TraceData",
    "TraceListener",
    "Tracer",
    "collecting",
    "get_registry",
    "get_tracer",
    "load_snapshot",
    "load_trace",
    "load_trace_lenient",
    "merge_snapshots",
    "parse_prometheus",
    "record_job_stats",
    "set_registry",
    "set_tracer",
    "to_prometheus",
    "tracing",
    "write_snapshot",
    "write_trace",
]
