"""Table 4: speedup of sPCA-Spark on clusters of 16 / 32 / 64 cores.

Paper result on the Tweets dataset: near-ideal speedup (1 / 1.95 / 3.82) --
the design plus Spark's low communication overhead give an almost linear
scale-out.
"""

import pytest

from harness import default_config, run_spca
from repro.data.paper import tweets_series

NODE_SWEEP = (2, 4, 8)  # 16, 32, 64 cores


@pytest.mark.benchmark(group="table4")
def test_table4_speedup(benchmark, report):
    # The full-width Tweets matrix with enough rows that per-task compute
    # dominates fixed overheads (the regime the paper's Table 4 is in).
    spec = tweets_series(n_rows=100_000)[2]
    data = spec.generate()
    config = default_config(max_iterations=5, compute_error_every_iteration=False)
    times = {}

    def run_all():
        # Simulated times inherit single-process timing noise (amplified by
        # compute_scale), so take the best of three runs per cluster size.
        # compute_scale is raised so the run is compute-dominated, the
        # regime of the paper's full-size Table 4 experiment.
        for num_nodes in NODE_SWEEP:
            samples = [
                run_spca(
                    data, "spark", num_nodes=num_nodes, config=config,
                    compute_scale=5000.0,
                ).seconds
                for _ in range(5)
            ]
            # min-of-5: wall-clock noise only ever inflates a sample.
            times[num_nodes * 8] = min(samples)
        return len(times)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    base_time = times[16]
    report(f"Table 4: sPCA-Spark scale-out on Tweets ({spec.label})")
    report(f"{'cores':>8}{'time (sim s)':>14}{'speedup':>10}")
    for cores, seconds in times.items():
        report(f"{cores:>8}{seconds:>14.1f}{base_time / seconds:>10.2f}")

    speedup_32 = base_time / times[32]
    speedup_64 = base_time / times[64]
    # Monotone scale-out with near-linear shape (paper: 1.95 / 3.82; allow
    # simulation slack but require the doubling trend).
    assert speedup_32 > 1.3
    assert speedup_64 > 2.0
    assert speedup_64 > speedup_32
