"""Trace exporters: Chrome trace-event schema, JSONL, reconciliation."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.metrics import EngineMetrics, JobStats
from repro.obs import (
    JobTrace,
    PhaseTrace,
    TaskTrace,
    Tracer,
    load_trace,
    write_trace,
)
from repro.obs.export import (
    TraceData,
    from_chrome,
    from_jsonl_lines,
    to_chrome,
    to_jsonl_lines,
)
from repro.obs.report import reconcile, summarize


def traced_jobs():
    tracer = Tracer()
    with tracer.span("run", "fit"):
        with tracer.span("iteration", "iteration[1]") as it:
            tracer.record_job(
                JobTrace(
                    name="YtXJob", sim_duration=4.0,
                    phases=[PhaseTrace("map", 0.0, 4.0, tasks=[
                        TaskTrace(task_id=0, slot=2, start=0.0, duration=4.0,
                                  retries=1),
                    ])],
                    attrs={"shuffle_bytes": 256, "intermediate_bytes": 256},
                )
            )
            it.set(objective=0.5)
    return tracer


class TestChromeSchema:
    def test_document_shape(self):
        doc = to_chrome(TraceData.from_tracer(traced_jobs()))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list)
        for entry in doc["traceEvents"]:
            assert entry["ph"] in ("M", "X", "i", "C")
            assert entry["pid"] == 1
            if entry["ph"] == "X":
                assert {"name", "cat", "ts", "dur", "tid", "args"} <= set(entry)
                assert entry["ts"] >= 0.0
                assert entry["dur"] >= 0.0
            if entry["ph"] == "i":
                assert entry["s"] == "p"

    def test_sim_time_is_trace_clock(self):
        doc = to_chrome(TraceData.from_tracer(traced_jobs()))
        job = next(e for e in doc["traceEvents"]
                   if e.get("ph") == "X" and e["name"] == "YtXJob")
        assert job["ts"] == 0.0
        assert job["dur"] == 4.0 * 1e6  # simulated seconds in microseconds

    def test_task_spans_land_on_slot_tracks(self):
        doc = to_chrome(TraceData.from_tracer(traced_jobs()))
        task = next(e for e in doc["traceEvents"]
                    if e.get("ph") == "X" and e["cat"] == "task")
        assert task["tid"] == 3  # slot 2 -> tid slot+1
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"driver", "slot 2"} <= names

    def test_counter_track_accumulates_intermediate_bytes(self):
        doc = to_chrome(TraceData.from_tracer(traced_jobs()))
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters[-1]["args"]["cumulative"] == 256

    def test_document_is_json_serializable(self):
        json.dumps(to_chrome(TraceData.from_tracer(traced_jobs())))


class TestRoundTrip:
    def test_chrome_roundtrip_is_lossless(self):
        trace = TraceData.from_tracer(traced_jobs())
        loaded = from_chrome(json.loads(json.dumps(to_chrome(trace))))
        assert loaded.spans == trace.spans
        assert loaded.events == trace.events

    def test_jsonl_roundtrip_is_lossless(self):
        trace = TraceData.from_tracer(traced_jobs())
        loaded = from_jsonl_lines(to_jsonl_lines(trace))
        assert loaded.spans == trace.spans
        assert loaded.events == trace.events

    def test_jsonl_header_line(self):
        lines = to_jsonl_lines(TraceData.from_tracer(traced_jobs()))
        header = json.loads(lines[0])
        assert header["rec"] == "header"
        assert header["schema"] == "repro.obs/1"
        assert header["spans"] == len(lines) - 1 - header["events"]

    def test_write_and_load_both_formats(self, tmp_path):
        trace = TraceData.from_tracer(traced_jobs())
        for name in ("t.trace.json", "t.jsonl"):
            path = write_trace(trace, tmp_path / name)
            loaded = load_trace(path)
            assert loaded.spans == trace.spans
            assert loaded.events == trace.events

    def test_write_accepts_tracer_directly(self, tmp_path):
        path = write_trace(traced_jobs(), tmp_path / "direct.trace.json")
        assert load_trace(path).spans


job_stats = st.builds(
    JobStats,
    name=st.sampled_from(["meanJob", "YtXJob", "ss3Job", "collect"]),
    n_map_tasks=st.integers(0, 8),
    n_reduce_tasks=st.integers(0, 4),
    map_output_bytes=st.integers(0, 10**9),
    shuffle_bytes=st.integers(0, 10**9),
    output_bytes=st.integers(0, 10**6),
    output_is_intermediate=st.booleans(),
    hdfs_read_bytes=st.integers(0, 10**9),
    hdfs_write_bytes=st.integers(0, 10**9),
    driver_result_bytes=st.integers(0, 10**6),
    broadcast_bytes=st.integers(0, 10**6),
    sim_seconds=st.floats(0.0, 1e6, allow_nan=False),
    task_retries=st.integers(0, 5),
)


class TestReconciliationProperty:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(job_stats, min_size=0, max_size=12))
    def test_recorded_jobs_always_reconcile(self, jobs):
        """Any sequence of JobStats -> trace totals == EngineMetrics totals."""
        metrics = EngineMetrics()
        tracer = Tracer()
        for stats in jobs:
            metrics.record(stats)
            tracer.record_job(JobTrace.from_stats(stats))
        assert reconcile(TraceData.from_tracer(tracer), metrics) == []

    @settings(max_examples=30, deadline=None)
    @given(jobs=st.lists(job_stats, min_size=0, max_size=8))
    def test_reconciliation_survives_disk_roundtrip(self, jobs, tmp_path_factory):
        metrics = EngineMetrics()
        tracer = Tracer()
        for stats in jobs:
            metrics.record(stats)
            tracer.record_job(JobTrace.from_stats(stats))
        tmp = tmp_path_factory.mktemp("trace")
        loaded = load_trace(write_trace(tracer, tmp / "t.trace.json"))
        assert reconcile(loaded, metrics) == []

    def test_reconcile_reports_drift(self):
        metrics = EngineMetrics()
        metrics.record(JobStats(name="j", sim_seconds=1.0, shuffle_bytes=10))
        tracer = Tracer()
        tracer.record_job(JobTrace(name="j", sim_duration=1.0,
                                   attrs={"shuffle_bytes": 11}))
        problems = reconcile(TraceData.from_tracer(tracer), metrics)
        assert any("shuffle_bytes" in p for p in problems)

    def test_reconcile_reports_missing_jobs(self):
        metrics = EngineMetrics()
        metrics.record(JobStats(name="j", sim_seconds=1.0))
        problems = reconcile(TraceData(), metrics)
        assert problems and "0 job spans" in problems[0]


class TestSummarize:
    def test_groups_by_job_and_phase(self):
        summary = summarize(TraceData.from_tracer(traced_jobs()))
        assert summary.n_jobs == 1
        assert summary.total_sim_seconds == pytest.approx(4.0)
        assert summary.by_job_name["YtXJob"]["shuffle_bytes"] == 256
        assert summary.by_phase_name["map"]["tasks"] == 1
