"""Command-line interface: generate data, fit sPCA, transform, evaluate.

Installed as ``repro-spca``; also runnable via ``python -m repro.cli``.

Examples::

    repro-spca generate tweets --rows 20000 --cols 600 --out tweets.npz
    repro-spca fit tweets.npz --components 10 --backend spark --out model.npz
    repro-spca fit tweets.npz --backend mapreduce --trace fit.trace.json
    repro-spca fit tweets.npz --backend mapreduce --faults plan.json \\
        --checkpoint ckpts/ --checkpoint-every 2
    repro-spca resume tweets.npz --checkpoint ckpts/ --backend mapreduce
    repro-spca fit tweets.npz --backend spark --live --metrics fit.metrics.json
    repro-spca report fit.trace.json
    repro-spca report fit.trace.json --html fit.html --metrics fit.metrics.json
    repro-spca diff baseline.trace.jsonl fit.trace.jsonl
    repro-spca trace fit.trace.json --to fit.jsonl
    repro-spca evaluate model.npz tweets.npz
    repro-spca transform model.npz tweets.npz --out latent.npz
    repro-spca info model.npz
    repro-spca registry publish models/ tweets model.npz --tag prod
    repro-spca registry list models/ tweets
    repro-spca serve tweets.npz --registry models/ --model tweets \\
        --op transform --out latent.npz --metrics serve.metrics.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import SPCA, SPCAConfig
from repro.core.persistence import load_model, save_model
from repro.data import bag_of_words, nmr_spectra, sift_features
from repro.data.io import load_matrix, save_matrix
from repro.errors import ReproError
from repro.metrics import accuracy_from_error, reconstruction_error

_GENERATORS = {
    "tweets": lambda rows, cols, seed: bag_of_words(rows, cols, words_per_doc=8.0, seed=seed),
    "biotext": lambda rows, cols, seed: bag_of_words(rows, cols, words_per_doc=40.0, seed=seed),
    "diabetes": lambda rows, cols, seed: nmr_spectra(rows, cols, seed=seed),
    "images": lambda rows, cols, seed: sift_features(rows, cols, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spca",
        description="sPCA (SIGMOD 2015) reproduction: scalable PCA tooling",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="create a synthetic dataset")
    generate.add_argument("dataset", choices=sorted(_GENERATORS))
    generate.add_argument("--rows", type=int, default=10_000)
    generate.add_argument("--cols", type=int, default=1_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output .npz path")

    fit = commands.add_parser("fit", help="fit sPCA to a matrix")
    fit.add_argument("input", help="matrix .npz (from 'generate' or save_matrix)")
    fit.add_argument("--components", "-d", type=int, default=10)
    fit.add_argument(
        "--backend", choices=("sequential", "mapreduce", "spark"),
        default="sequential",
    )
    fit.add_argument("--max-iterations", type=int, default=10)
    fit.add_argument("--tolerance", type=float, default=1e-3)
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument("--smart-init", action="store_true",
                     help="warm start from a small row sample (sPCA-SG)")
    fit.add_argument("--out", help="where to save the fitted model (.npz)")
    fit.add_argument(
        "--trace", metavar="PATH",
        help="record an execution trace: .jsonl for an event log, anything "
             "else for Chrome trace-event JSON (open in ui.perfetto.dev)",
    )
    fit.add_argument(
        "--faults", metavar="PLAN.json",
        help="inject the deterministic fault plan into the simulated engine "
             "(see repro.faults.FaultPlan)",
    )
    fit.add_argument(
        "--checkpoint", metavar="DIR",
        help="snapshot EM state into DIR so a killed run can be resumed "
             "with the 'resume' subcommand",
    )
    fit.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="snapshot after every N-th iteration (default 1)",
    )

    resume = commands.add_parser(
        "resume", help="continue a checkpointed fit from its newest snapshot"
    )
    resume.add_argument("input", help="the same matrix the original fit ran on")
    resume.add_argument(
        "--checkpoint", required=True, metavar="DIR",
        help="checkpoint directory written by 'fit --checkpoint'",
    )
    resume.add_argument(
        "--backend", choices=("sequential", "mapreduce", "spark"),
        default="sequential",
    )
    resume.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="keep snapshotting every N iterations while resuming "
             "(default: no further snapshots)",
    )
    resume.add_argument("--faults", metavar="PLAN.json",
                        help="fault plan for the resumed run")
    resume.add_argument("--out", help="where to save the fitted model (.npz)")
    resume.add_argument("--trace", metavar="PATH",
                        help="record an execution trace of the resumed run")

    transform = commands.add_parser("transform", help="project a matrix to latent space")
    transform.add_argument("model")
    transform.add_argument("input")
    transform.add_argument("--out", required=True)

    evaluate = commands.add_parser("evaluate", help="reconstruction accuracy of a model")
    evaluate.add_argument("model")
    evaluate.add_argument("input")
    evaluate.add_argument("--sample-fraction", type=float, default=1.0)
    evaluate.add_argument("--seed", type=int, default=0)

    select = commands.add_parser(
        "select", help="choose the number of components by BIC"
    )
    select.add_argument("input")
    select.add_argument("--candidates", default="1,2,4,8,16",
                        help="comma-separated candidate d values")
    select.add_argument("--max-iterations", type=int, default=60)
    select.add_argument("--seed", type=int, default=0)

    bench = commands.add_parser(
        "bench", help="quick comparison of sPCA vs the baselines on one matrix"
    )
    bench.add_argument("input")
    bench.add_argument("--components", "-d", type=int, default=10)
    bench.add_argument("--seed", type=int, default=0)

    info = commands.add_parser("info", help="describe a model or matrix archive")
    info.add_argument("path")

    trace = commands.add_parser(
        "trace", help="inspect or convert a recorded execution trace"
    )
    trace.add_argument("input", help="trace file (.json Chrome format or .jsonl)")
    trace.add_argument(
        "--to", metavar="PATH",
        help="convert to PATH instead of printing a summary "
             "(.jsonl -> event log, else Chrome trace-event JSON)",
    )
    trace.add_argument(
        "--diff", metavar="BASELINE",
        help="compare against BASELINE instead (alias for the 'diff' "
             "subcommand with this trace as the current run)",
    )

    report = commands.add_parser(
        "report", help="per-job / per-phase / per-iteration trace breakdowns"
    )
    report.add_argument("input", help="trace file (.json Chrome format or .jsonl)")
    report.add_argument(
        "--section",
        choices=("all", "jobs", "phases", "iterations",
                 "critical-path", "stragglers"),
        default="all", help="which breakdown to print",
    )
    report.add_argument(
        "--html", metavar="PATH",
        help="write a self-contained HTML report to PATH instead of printing",
    )
    report.add_argument(
        "--metrics", metavar="SNAPSHOT.json",
        help="include this metrics snapshot (from 'fit --metrics') in the report",
    )

    diff = commands.add_parser(
        "diff", help="compare two traces: per-phase/per-job regressions"
    )
    diff.add_argument("baseline", help="baseline trace file")
    diff.add_argument("current", help="current trace file")
    diff.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRACTION",
        help="flag quantities that moved more than this fraction (default 0.10)",
    )
    diff.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any simulated time grew beyond the threshold",
    )

    lint = commands.add_parser(
        "lint", help="run the repro-lint dataflow static analysis"
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"])
    lint.add_argument("--select", help="comma-separated rule codes to run")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="report format (json for machines, github for CI annotations)",
    )
    lint.add_argument(
        "--racecheck", action="store_true",
        help="also run the dynamic race detector over a small sPCA fit",
    )
    lint.add_argument(
        "--racecheck-executor", choices=("threads", "processes"),
        default="threads",
    )
    lint.add_argument("-q", "--quiet", action="store_true")

    registry = commands.add_parser(
        "registry", help="manage the versioned model registry"
    )
    registry_cmds = registry.add_subparsers(dest="registry_command", required=True)

    reg_publish = registry_cmds.add_parser(
        "publish", help="publish a fitted model archive into the registry"
    )
    reg_publish.add_argument("root", help="registry directory")
    reg_publish.add_argument("name", help="model name")
    reg_publish.add_argument("model", help="model .npz (from 'fit --out')")
    reg_publish.add_argument(
        "--version", default=None,
        help="explicit MAJOR.MINOR.PATCH (default: bump newest minor)",
    )
    reg_publish.add_argument(
        "--tag", action="append", default=[], metavar="LABEL",
        help="also point this tag at the published version (repeatable)",
    )
    reg_publish.add_argument("--notes", default="", help="free-form manifest notes")
    reg_publish.add_argument(
        "--overwrite", action="store_true",
        help="allow republishing an existing version",
    )

    reg_list = registry_cmds.add_parser(
        "list", help="list models, or one model's versions and tags"
    )
    reg_list.add_argument("root")
    reg_list.add_argument("name", nargs="?", default=None)

    reg_show = registry_cmds.add_parser("show", help="print a version's manifest")
    reg_show.add_argument("root")
    reg_show.add_argument("name")
    reg_show.add_argument(
        "--version", default="latest",
        help="exact version, tag, or 'latest' (default)",
    )

    reg_tag = registry_cmds.add_parser(
        "tag", help="point a tag at a published version"
    )
    reg_tag.add_argument("root")
    reg_tag.add_argument("name")
    reg_tag.add_argument("version")
    reg_tag.add_argument("label")

    reg_verify = registry_cmds.add_parser(
        "verify", help="re-hash stored archives against their manifests"
    )
    reg_verify.add_argument("root")
    reg_verify.add_argument("name", nargs="?", default=None)

    serve = commands.add_parser(
        "serve",
        help="serve each input row as one concurrent request "
             "through the micro-batching front-end",
    )
    serve.add_argument("input", help="matrix .npz; each row becomes one request")
    serve.add_argument("--registry", required=True, metavar="DIR")
    serve.add_argument("--model", required=True, metavar="NAME")
    serve.add_argument(
        "--version", default="latest",
        help="exact version, tag, or 'latest' (default)",
    )
    serve.add_argument(
        "--op", choices=("transform", "project", "reconstruct", "score"),
        default="transform",
    )
    serve.add_argument("--out", help="save the stacked results (.npz)")
    serve.add_argument(
        "--unbatched", action="store_true",
        help="disable request coalescing (per-request dispatch baseline)",
    )
    serve.add_argument(
        "--max-batch-rows", type=int, default=256,
        help="flush a batch once this many rows are queued (default 256)",
    )
    serve.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="longest a request waits for batch neighbours (default 2ms)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline; expired requests fail instead of compute",
    )
    serve.add_argument(
        "--executor", choices=("serial", "threads", "processes"),
        default="serial",
        help="executor for intra-batch chunk parallelism (default serial)",
    )
    serve.add_argument("--workers", type=int, default=None, metavar="N")
    serve.add_argument(
        "--trace", metavar="PATH",
        help="record serve-request/serve-batch spans and events",
    )
    serve.add_argument(
        "--metrics", metavar="PATH",
        help="write the spca_serve_*/spca_registry_* metrics snapshot",
    )

    stream = commands.add_parser(
        "stream",
        help="streaming PCA: windowed mini-batch EM over a row stream",
    )
    stream.add_argument(
        "input", nargs="?", default=None,
        help="matrix .npz to stream row-by-row (omit with --synthetic)",
    )
    stream.add_argument(
        "--synthetic", metavar="COLS,RANK",
        help="stream an unbounded synthetic low-rank source instead of a "
             "file (requires --max-windows or --max-rows)",
    )
    stream.add_argument(
        "--drift-at", type=int, metavar="ROW",
        help="plant a regime change at this row of the synthetic stream",
    )
    stream.add_argument("--drift-angle", type=float, default=45.0,
                        metavar="DEG", help="planted rotation (default 45)")
    stream.add_argument("--components", "-d", type=int, default=10)
    stream.add_argument(
        "--window", type=int, default=256,
        help="rows per model update (the sEM mini-batch size, default 256)",
    )
    stream.add_argument(
        "--step", type=int, default=None, metavar="ROWS",
        help="window advance for sliding windows (default: tumbling)",
    )
    stream.add_argument(
        "--backend", choices=("sequential", "mapreduce", "spark"),
        default="sequential",
        help="engine that reduces each window to sufficient statistics",
    )
    stream.add_argument("--chunk-rows", type=int, default=256,
                        help="arrival chunk size when streaming a file")
    stream.add_argument("--epochs", type=int, default=1,
                        help="replays of a file-backed stream (default 1)")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--rows-per-task", type=int, default=256,
                        help="rows per engine task inside a window")
    stream.add_argument("--max-windows", type=int, metavar="N",
                        help="stop after N windows")
    stream.add_argument("--max-rows", type=int, metavar="N",
                        help="stop once N rows were folded in")
    stream.add_argument(
        "--drift-threshold", type=float, default=None, metavar="DEG",
        help="enable subspace drift detection at this angle",
    )
    stream.add_argument("--drift-lag", type=int, default=3)
    stream.add_argument("--drift-warmup", type=int, default=None)
    stream.add_argument("--drift-patience", type=int, default=1)
    stream.add_argument(
        "--checkpoint", metavar="DIR",
        help="snapshot stream state into DIR at window boundaries",
    )
    stream.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="snapshot after every N-th window (default 1)",
    )
    stream.add_argument(
        "--resume", action="store_true",
        help="continue from the newest snapshot in --checkpoint",
    )
    stream.add_argument("--faults", metavar="PLAN.json",
                        help="fault plan for the engine (chaos testing)")
    stream.add_argument("--out", help="where to save the final model (.npz)")
    stream.add_argument("--trace", metavar="PATH",
                        help="record an execution trace of the stream")

    for fitting in (fit, bench):
        fitting.add_argument(
            "--check-contracts", action="store_true",
            help="enforce runtime shape contracts on every kernel call",
        )

    for parallel in (fit, resume, stream):
        parallel.add_argument(
            "--executor", choices=("serial", "threads", "processes"),
            default="serial",
            help="task executor for the engine backends: serial (default, "
                 "bit-identical baseline), threads, or processes "
                 "(multi-core with shared-memory block transport)",
        )
        parallel.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="worker count for --executor threads/processes "
                 "(default: CPU count, capped at 8)",
        )
        parallel.add_argument(
            "--kernel-backend", choices=("numpy", "fused", "numba"),
            default=None,
            help="per-block kernel implementation: numpy (default), fused "
                 "(shared intermediates, bitwise identical), or numba "
                 "(compiled; falls back to numpy when not installed). "
                 "On resume the default keeps the checkpoint's choice.",
        )
        parallel.add_argument(
            "--worker-resident", action="store_true",
            help="pin input splits in the executor's resident store so "
                 "iterations after the first ship only the small model "
                 "matrices to workers (mapreduce backend with a concurrent "
                 "--executor; a no-op elsewhere)",
        )
        parallel.add_argument(
            "--live", action="store_true",
            help="show a live in-terminal dashboard (iteration, convergence, "
                 "phase timings, occupancy) while the fit runs",
        )
        parallel.add_argument(
            "--metrics", metavar="PATH",
            help="write a metrics snapshot when the run finishes "
                 "(.prom for Prometheus text format, anything else for JSON)",
        )

    return parser


def _make_backend(
    name: str,
    config: SPCAConfig,
    faults_path: str | None = None,
    executor=None,
    worker_resident: bool = False,
):
    injector = None
    if faults_path is not None:
        from repro.faults import FaultPlan, PlannedFaults

        injector = PlannedFaults(FaultPlan.load(faults_path))
    if name == "sequential":
        from repro.backends import SequentialBackend

        if injector is not None:
            print(
                "warning: --faults has no effect on the sequential backend",
                file=sys.stderr,
            )
        if executor is not None and not executor.serial:
            print(
                "warning: --executor has no effect on the sequential backend",
                file=sys.stderr,
            )
        if worker_resident:
            print(
                "warning: --worker-resident has no effect on the "
                "sequential backend",
                file=sys.stderr,
            )
        return SequentialBackend(config)
    if name == "mapreduce":
        from repro.backends import MapReduceBackend
        from repro.engine.mapreduce.runtime import MapReduceRuntime

        return MapReduceBackend(
            config,
            runtime=MapReduceRuntime(faults=injector, executor=executor),
            worker_resident=worker_resident,
        )
    from repro.backends import SparkBackend
    from repro.engine.spark.context import SparkContext

    if worker_resident:
        print(
            "note: --worker-resident is a no-op on the spark backend "
            "(cached partitions already live with their workers)",
            file=sys.stderr,
        )
    return SparkBackend(
        config, context=SparkContext(faults=injector, executor=executor)
    )


def _make_executor(args):
    """Build the task executor requested by ``--executor``/``--workers``."""
    from repro.engine.exec import resolve_executor

    return resolve_executor(
        getattr(args, "executor", "serial"), getattr(args, "workers", None)
    )


def _cmd_generate(args) -> int:
    matrix = _GENERATORS[args.dataset](args.rows, args.cols, args.seed)
    path = save_matrix(matrix, args.out)
    density = ""
    if hasattr(matrix, "nnz"):
        density = f", density {matrix.nnz / (args.rows * args.cols):.4f}"
    print(f"wrote {args.dataset} matrix {matrix.shape}{density} to {path}")
    return 0


def _maybe_check_contracts(args) -> None:
    if getattr(args, "check_contracts", False):
        from repro.lint import contracts

        contracts.enable()


def _run_instrumented(args, run):
    """Run *run()* under the observability wiring the CLI flags request.

    ``--trace`` records a trace (a ``.jsonl`` path streams spans to disk as
    they close instead of buffering the run in memory), ``--live`` attaches
    the in-terminal dashboard, and ``--metrics`` collects a registry
    snapshot.  Returns ``(result, trace_path, metrics_snapshot)``.
    """
    from contextlib import ExitStack

    trace_arg = getattr(args, "trace", None)
    live = getattr(args, "live", False)
    metrics_arg = getattr(args, "metrics", None)
    streaming = trace_arg is not None and trace_arg.endswith(".jsonl")
    snapshot = None
    trace_path = None
    with ExitStack() as stack:
        registry = None
        if live or metrics_arg:
            from repro.obs import collecting

            registry = stack.enter_context(collecting())
        if trace_arg or live:
            from repro.obs import tracing

            # Streaming (and dashboard-only) runs keep the tracer's span
            # buffer empty: listeners see every span, memory stays O(1).
            tracer = stack.enter_context(
                tracing(retain=bool(trace_arg) and not streaming)
            )
            if streaming:
                from repro.obs import JsonlTraceWriter

                writer = JsonlTraceWriter(trace_arg)
                tracer.add_listener(writer)
                stack.callback(writer.close)
                trace_path = trace_arg
            if live:
                from repro.obs.live import LiveDashboard

                dashboard = LiveDashboard(registry=registry)
                tracer.add_listener(dashboard)
                stack.callback(dashboard.close)
            result = run()
            if trace_arg and not streaming:
                from repro.obs import write_trace

                trace_path = write_trace(tracer, trace_arg)
        else:
            result = run()
        if registry is not None:
            snapshot = registry.snapshot()
    if metrics_arg and snapshot is not None:
        from repro.obs import write_snapshot

        write_snapshot(snapshot, metrics_arg)
    return result, trace_path, snapshot


def _cmd_fit(args) -> int:
    _maybe_check_contracts(args)
    matrix = load_matrix(args.input)
    config = SPCAConfig(
        n_components=args.components,
        max_iterations=args.max_iterations,
        tolerance=args.tolerance,
        seed=args.seed,
        smart_init=args.smart_init,
        kernel_backend=args.kernel_backend or "numpy",
    )
    executor = _make_executor(args)
    backend = _make_backend(
        args.backend, config, faults_path=args.faults, executor=executor,
        worker_resident=args.worker_resident,
    )
    checkpoint = None
    if args.checkpoint:
        from repro.core import CheckpointPolicy, DirectoryCheckpointStore

        checkpoint = CheckpointPolicy(
            DirectoryCheckpointStore(args.checkpoint), args.checkpoint_every
        )
    try:
        (model, history), trace_path, _snapshot = _run_instrumented(
            args, lambda: SPCA(config, backend).fit(matrix, checkpoint=checkpoint)
        )
    finally:
        executor.shutdown()
    print(
        f"fit {matrix.shape} with d={args.components} on {args.backend}: "
        f"{history.n_iterations} iterations, stop={history.stop_reason}"
    )
    if checkpoint is not None:
        stored = checkpoint.store.iterations()
        if stored:
            print(f"checkpoints in {args.checkpoint}: iterations {stored}")
    if history.final_accuracy is not None:
        print(f"final accuracy: {history.final_accuracy:.4f}")
    if backend.simulated_seconds:
        print(f"simulated cluster time: {backend.simulated_seconds:.2f}s, "
              f"intermediate data: {backend.intermediate_bytes:,} bytes")
    if trace_path is not None:
        print(f"trace written to {trace_path}")
    if args.metrics:
        print(f"metrics snapshot written to {args.metrics}")
    if args.out:
        path = save_model(model, args.out)
        print(f"model saved to {path}")
    return 0


def _cmd_resume(args) -> int:
    from repro.core import DirectoryCheckpointStore

    matrix = load_matrix(args.input)
    store = DirectoryCheckpointStore(args.checkpoint)
    newest = store.load_latest()
    if newest is None:
        print(f"error: no checkpoints in {args.checkpoint}", file=sys.stderr)
        return 2
    config = SPCAConfig(**newest.config)
    if args.kernel_backend is not None:
        # An execution detail, not part of the checkpointed math: a resume
        # may finish a numpy fit with the fused kernels bit-identically.
        config = config.with_options(kernel_backend=args.kernel_backend)
    executor = _make_executor(args)
    backend = _make_backend(
        args.backend, config, faults_path=args.faults, executor=executor,
        worker_resident=args.worker_resident,
    )
    spca = SPCA(config, backend)
    try:
        (model, history), trace_path, _snapshot = _run_instrumented(
            args,
            lambda: spca.resume(matrix, store, checkpoint_every=args.checkpoint_every),
        )
    finally:
        executor.shutdown()
    print(
        f"resumed {matrix.shape} from iteration {newest.iteration} on "
        f"{args.backend}: {history.n_iterations} iterations total, "
        f"stop={history.stop_reason}"
    )
    if history.final_accuracy is not None:
        print(f"final accuracy: {history.final_accuracy:.4f}")
    if trace_path is not None:
        print(f"trace written to {trace_path}")
    if args.metrics:
        print(f"metrics snapshot written to {args.metrics}")
    if args.out:
        path = save_model(model, args.out)
        print(f"model saved to {path}")
    return 0


def _cmd_transform(args) -> int:
    model = load_model(args.model)
    matrix = load_matrix(args.input)
    latent = model.transform(matrix)
    path = save_matrix(latent, args.out)
    print(f"projected {matrix.shape} -> {latent.shape}; saved to {path}")
    return 0


def _cmd_evaluate(args) -> int:
    model = load_model(args.model)
    matrix = load_matrix(args.input)
    rng = np.random.default_rng(args.seed)
    error = reconstruction_error(
        matrix, model.components, model.mean,
        sample_fraction=args.sample_fraction, rng=rng,
    )
    print(f"reconstruction error: {error:.6f}")
    print(f"accuracy: {accuracy_from_error(error):.6f}")
    return 0


def _cmd_select(args) -> int:
    from repro.core.selection import score_candidates

    matrix = load_matrix(args.input)
    try:
        candidates = [int(c) for c in args.candidates.split(",") if c.strip()]
    except ValueError:
        print(f"error: malformed candidate list {args.candidates!r}", file=sys.stderr)
        return 2
    scores = score_candidates(
        matrix, candidates, max_iterations=args.max_iterations, seed=args.seed
    )
    print(f"{'d':>4}{'log-likelihood':>18}{'BIC':>16}{'noise var':>12}")
    best = min(scores, key=lambda s: s.bic)
    for score in scores:
        marker = "  <-- best" if score is best else ""
        print(f"{score.n_components:>4}{score.log_likelihood:>18.1f}"
              f"{score.bic:>16.1f}{score.noise_variance:>12.5f}{marker}")
    print(f"chosen d = {best.n_components}")
    return 0


def _cmd_bench(args) -> int:
    """One-row Table 2: time the four implementations on *input*."""
    _maybe_check_contracts(args)
    from repro.backends import MapReduceBackend, SparkBackend
    from repro.baselines import CovariancePCA, SSVDPCAMapReduce
    from repro.engine.mapreduce.runtime import MapReduceRuntime
    from repro.engine.spark.context import SparkContext
    from repro.errors import DriverOutOfMemoryError

    matrix = load_matrix(args.input)
    config = SPCAConfig(
        n_components=args.components, max_iterations=10, seed=args.seed,
        compute_error_every_iteration=False,
    )
    rows = []

    backend = SparkBackend(config, SparkContext())
    SPCA(config, backend).fit(matrix)
    rows.append(("sPCA-Spark", backend.simulated_seconds, backend.intermediate_bytes))

    try:
        mllib = CovariancePCA(args.components, SparkContext()).fit(matrix)
        rows.append(("MLlib-PCA", mllib.simulated_seconds, mllib.intermediate_bytes))
    except DriverOutOfMemoryError:
        rows.append(("MLlib-PCA", None, 0))

    backend = MapReduceBackend(config, MapReduceRuntime())
    SPCA(config, backend).fit(matrix)
    rows.append(("sPCA-MapReduce", backend.simulated_seconds, backend.intermediate_bytes))

    mahout = SSVDPCAMapReduce(
        args.components, runtime=MapReduceRuntime(), seed=args.seed
    ).fit(matrix, compute_accuracy=False)
    rows.append(("Mahout-PCA", mahout.simulated_seconds, mahout.intermediate_bytes))

    print(f"{'algorithm':<16}{'sim time (s)':>14}{'intermediate (B)':>18}")
    for name, seconds, nbytes in rows:
        cell = "Fail" if seconds is None else f"{seconds:.1f}"
        print(f"{name:<16}{cell:>14}{nbytes:>18,}")
    return 0


def _cmd_trace(args) -> int:
    from collections import Counter

    from repro.obs import load_trace, write_trace

    if args.diff:
        return _diff_traces_cmd(args.diff, args.input, threshold=0.10)
    trace = load_trace(args.input)
    if args.to:
        path = write_trace(trace, args.to)
        print(f"converted {args.input} -> {path} "
              f"({len(trace.spans)} spans, {len(trace.events)} events)")
        return 0
    span_kinds = Counter(span.kind for span in trace.spans)
    event_types = Counter(event.type for event in trace.events)
    sim_end = max((span.t0 + span.dur for span in trace.spans), default=0.0)
    print(f"{args.input}: {len(trace.spans)} spans, {len(trace.events)} events, "
          f"simulated span {sim_end:.3f}s")
    for kind in ("run", "iteration", "job", "phase", "task"):
        if span_kinds.get(kind):
            print(f"  {kind:<12}{span_kinds[kind]:>8}")
    for event_type, count in sorted(event_types.items()):
        print(f"  event:{event_type:<18}{count:>8}")
    return 0


def _cmd_report(args) -> int:
    from repro.obs import load_trace_lenient
    from repro.obs.analyze import (
        critical_path,
        format_critical_path,
        format_stragglers,
        straggler_report,
    )
    from repro.obs.report import (
        format_iteration_table,
        format_job_table,
        format_phase_table,
        render_html,
        summarize,
    )

    # Lenient loading: a truncated or partially-written trace (a killed run,
    # a crashed streaming writer) degrades to warnings + a partial report
    # instead of a traceback.
    trace, warnings = load_trace_lenient(args.input)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)

    snapshot = None
    if args.metrics:
        from repro.obs import load_snapshot

        snapshot = load_snapshot(args.metrics)

    if args.html:
        from pathlib import Path

        html = render_html(
            trace, snapshot, title=f"repro-spca report: {args.input}",
            warnings=warnings,
        )
        Path(args.html).write_text(html)
        print(f"html report written to {args.html}")
        return 0

    summary = summarize(trace)
    sections = []
    if args.section in ("all", "jobs"):
        sections.append("== jobs ==\n" + format_job_table(summary))
    if args.section in ("all", "phases"):
        sections.append("== phases ==\n" + format_phase_table(summary))
    if args.section in ("all", "iterations"):
        sections.append("== iterations ==\n" + format_iteration_table(trace))
    if args.section in ("all", "critical-path"):
        sections.append(
            "== critical path ==\n" + format_critical_path(critical_path(trace))
        )
    if args.section in ("all", "stragglers"):
        sections.append(
            "== stragglers ==\n" + format_stragglers(straggler_report(trace))
        )
    print("\n\n".join(sections))
    return 0


def _diff_traces_cmd(
    baseline_path: str,
    current_path: str,
    threshold: float,
    fail_on_regression: bool = False,
) -> int:
    from repro.obs import load_trace_lenient
    from repro.obs.analyze import diff_traces, format_diff

    baseline, warnings_b = load_trace_lenient(baseline_path)
    current, warnings_c = load_trace_lenient(current_path)
    for warning in warnings_b + warnings_c:
        print(f"warning: {warning}", file=sys.stderr)
    diff = diff_traces(baseline, current)
    print(f"baseline: {baseline_path}\ncurrent:  {current_path}")
    print(format_diff(diff, threshold))
    if fail_on_regression and diff.regressions(threshold):
        return 1
    return 0


def _cmd_diff(args) -> int:
    return _diff_traces_cmd(
        args.baseline, args.current, args.threshold, args.fail_on_regression
    )


def _cmd_lint(args) -> int:
    from repro.lint import cli as lint_cli

    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv.append("--list-rules")
    if args.format != "text":
        argv += ["--format", args.format]
    if args.racecheck:
        argv += ["--racecheck", "--racecheck-executor", args.racecheck_executor]
    if args.quiet:
        argv.append("--quiet")
    return lint_cli.main(argv)


def _cmd_info(args) -> int:
    with np.load(args.path, allow_pickle=False) as archive:
        fields = set(archive.files)
        if "components" in fields:
            model = load_model(args.path)
            print(f"PCA model: {model.n_features} features x {model.n_components} components")
            print(f"noise variance: {model.noise_variance:.6g}; "
                  f"trained on {model.n_samples} rows")
        elif "kind" in fields:
            matrix = load_matrix(args.path)
            kind = "sparse CSR" if hasattr(matrix, "nnz") else "dense"
            extra = f", nnz={matrix.nnz:,}" if hasattr(matrix, "nnz") else ""
            print(f"{kind} matrix {matrix.shape}{extra}")
        else:
            print(f"unrecognized archive with fields: {sorted(fields)}")
            return 1
    return 0


def _cmd_registry(args) -> int:
    from repro.serve import ModelRegistry

    registry = ModelRegistry(args.root)
    if args.registry_command == "publish":
        model = load_model(args.model)
        record = registry.publish(
            args.name,
            model,
            version=args.version,
            tags=tuple(args.tag),
            notes=args.notes,
            overwrite=args.overwrite,
        )
        tags = f", tags: {', '.join(args.tag)}" if args.tag else ""
        print(
            f"published {record.name}@{record.version} "
            f"({record.n_features}x{record.n_components}, "
            f"sha256 {record.sha256[:12]}...){tags}"
        )
        return 0
    if args.registry_command == "list":
        if args.name is None:
            names = registry.models()
            if not names:
                print(f"no models in {args.root}")
                return 0
            for name in names:
                versions = registry.versions(name)
                print(f"{name}: {', '.join(versions)}")
            return 0
        versions = registry.versions(args.name)
        tags = registry.tags(args.name)
        by_version: dict[str, list[str]] = {}
        for label, version in tags.items():
            by_version.setdefault(version, []).append(label)
        for version in versions:
            labels = sorted(by_version.get(version, []))
            if version == versions[-1]:
                labels.append("latest")
            suffix = f"  [{', '.join(labels)}]" if labels else ""
            print(f"{args.name}@{version}{suffix}")
        return 0
    if args.registry_command == "show":
        record = registry.record(args.name, args.version)
        print(f"{record.name}@{record.version}")
        print(f"  archive: {record.path}")
        print(f"  sha256: {record.sha256}")
        print(f"  shape: {record.n_features} features x "
              f"{record.n_components} components")
        print(f"  trained on: {record.n_samples} rows, "
              f"noise variance {record.noise_variance:.6g}")
        if record.notes:
            print(f"  notes: {record.notes}")
        return 0
    if args.registry_command == "tag":
        registry.tag(args.name, args.version, args.label)
        print(f"tag {args.label} -> {args.name}@{args.version}")
        return 0
    # verify
    problems = registry.verify(args.name)
    scope = args.name or "registry"
    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        print(f"{scope}: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"{scope}: all archives verified")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import time

    from repro.serve import BatchPolicy, MicroBatcher, ModelRegistry, PCAService
    from repro.serve.loadgen import percentile_ms

    matrix = load_matrix(args.input)
    registry = ModelRegistry(args.registry)
    resolved = registry.resolve(args.model, args.version)
    executor = _make_executor(args)
    service = PCAService(
        registry, executor=None if executor.serial else executor
    )
    policy = BatchPolicy(
        max_batch_rows=args.max_batch_rows,
        max_delay_s=args.max_delay_ms / 1e3,
        default_deadline_s=(
            None if args.deadline_ms is None else args.deadline_ms / 1e3
        ),
    )
    rows = [matrix[i] for i in range(matrix.shape[0])]

    async def drive():
        batcher = MicroBatcher(service, policy, batching=not args.unbatched)

        async def one(row):
            started = time.perf_counter()
            result = await batcher.submit(
                args.op, args.model, row, version=args.version
            )
            return time.perf_counter() - started, result

        started = time.perf_counter()
        pairs = await asyncio.gather(*(one(row) for row in rows))
        wall = time.perf_counter() - started
        # batches_dispatched settles once close() joins in-flight work.
        await batcher.close()
        return list(pairs), wall, batcher.batches_dispatched

    try:
        (pairs, wall, batches), trace_path, _snapshot = _run_instrumented(
            args, lambda: asyncio.run(drive())
        )
    finally:
        executor.shutdown()
    latencies = [latency for latency, _ in pairs]
    outputs = [np.atleast_2d(result) for _, result in pairs]
    stacked = np.vstack(outputs) if args.op != "score" else np.concatenate(
        [np.ravel(result) for _, result in pairs]
    )
    mode = "unbatched" if args.unbatched else "batched"
    print(
        f"served {len(rows)} {args.op} requests against "
        f"{args.model}@{resolved} ({mode}, {batches} batches)"
    )
    print(
        f"wall {wall:.3f}s, {len(rows) / max(wall, 1e-12):.0f} req/s, "
        f"latency p50 {percentile_ms(latencies, 50):.2f}ms "
        f"p99 {percentile_ms(latencies, 99):.2f}ms"
    )
    if trace_path is not None:
        print(f"trace written to {trace_path}")
    if args.metrics:
        print(f"metrics snapshot written to {args.metrics}")
    if args.out:
        path = save_matrix(np.asarray(stacked), args.out)
        print(f"results saved to {path}")
    return 0


def _cmd_stream(args) -> int:
    from repro.stream import (
        DriftSpec,
        MatrixSource,
        StreamConfig,
        StreamingPCA,
        SyntheticSource,
    )

    if args.synthetic:
        if args.input is not None:
            print("error: give a matrix or --synthetic, not both", file=sys.stderr)
            return 2
        if args.max_windows is None and args.max_rows is None:
            print(
                "error: --synthetic streams forever; bound the run with "
                "--max-windows or --max-rows",
                file=sys.stderr,
            )
            return 2
        try:
            cols, rank = (int(part) for part in args.synthetic.split(","))
        except ValueError:
            print(
                f"error: malformed --synthetic {args.synthetic!r} "
                "(expected COLS,RANK)",
                file=sys.stderr,
            )
            return 2
        drift = None
        if args.drift_at is not None:
            drift = DriftSpec(at_row=args.drift_at, angle_degrees=args.drift_angle)
        source = SyntheticSource(cols, rank, seed=args.seed, drift=drift)
        described = f"synthetic {cols}x{rank} stream"
    elif args.input is not None:
        matrix = load_matrix(args.input)
        source = MatrixSource(
            matrix, chunk_rows=args.chunk_rows, epochs=args.epochs
        )
        described = f"{matrix.shape}" + (
            f" x{args.epochs} epochs" if args.epochs > 1 else ""
        )
    else:
        print("error: give a matrix .npz or --synthetic", file=sys.stderr)
        return 2

    config = StreamConfig(
        n_components=args.components,
        window=args.window,
        step=args.step,
        seed=args.seed,
        rows_per_task=args.rows_per_task,
        drift_threshold_degrees=args.drift_threshold,
        drift_lag=args.drift_lag,
        drift_warmup=args.drift_warmup,
        drift_patience=args.drift_patience,
    )
    injector = None
    if args.faults is not None:
        from repro.faults import FaultPlan, PlannedFaults

        injector = PlannedFaults(FaultPlan.load(args.faults))
        if args.backend == "sequential":
            print(
                "warning: --faults has no effect on the sequential engine",
                file=sys.stderr,
            )
    executor = _make_executor(args)
    pca = StreamingPCA(
        config,
        args.backend,
        executor=None if executor.serial else executor,
        faults=injector,
    )
    policy = None
    if args.checkpoint:
        from repro.core import CheckpointPolicy, DirectoryCheckpointStore

        policy = CheckpointPolicy(
            DirectoryCheckpointStore(args.checkpoint), args.checkpoint_every
        )
    if args.resume and policy is None:
        print("error: --resume needs --checkpoint DIR", file=sys.stderr)
        return 2

    def drive():
        if args.resume:
            return pca.resume(
                source, policy,
                max_windows=args.max_windows, max_rows=args.max_rows,
            )
        return pca.run(
            source,
            max_windows=args.max_windows,
            max_rows=args.max_rows,
            checkpoint=policy,
        )

    try:
        result, trace_path, _snapshot = _run_instrumented(args, drive)
    finally:
        executor.shutdown()
    verb = "resumed" if args.resume else "streamed"
    print(
        f"{verb} {described} on {args.backend}: {result.windows} windows, "
        f"{result.rows} rows (stop: {result.stop_reason})"
    )
    print(
        f"model: d={args.components}, noise variance "
        f"{result.model.noise_variance:.6g}, {result.model.n_samples} rows seen"
    )
    if result.wall_seconds > 0:
        print(f"throughput: {result.rows / result.wall_seconds:,.0f} rows/s")
    for event in result.drift_events:
        print(
            f"drift detected at window {event.window_index} "
            f"(row {event.end_row}): {event.angle_degrees:.1f} degrees"
        )
    if result.sim_seconds:
        print(f"simulated cluster time: {result.sim_seconds:.2f}s")
    if policy is not None and result.checkpoints:
        stored = policy.store.iterations()
        print(f"checkpoints in {args.checkpoint}: windows {stored}")
    if trace_path is not None:
        print(f"trace written to {trace_path}")
    if args.metrics:
        print(f"metrics snapshot written to {args.metrics}")
    if args.out:
        path = save_model(result.model, args.out)
        print(f"model saved to {path}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "fit": _cmd_fit,
    "resume": _cmd_resume,
    "transform": _cmd_transform,
    "evaluate": _cmd_evaluate,
    "select": _cmd_select,
    "bench": _cmd_bench,
    "info": _cmd_info,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "diff": _cmd_diff,
    "lint": _cmd_lint,
    "registry": _cmd_registry,
    "serve": _cmd_serve,
    "stream": _cmd_stream,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
