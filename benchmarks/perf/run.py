"""CLI for the batched-pipeline perf harness.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py            # full, BENCH_3.json
    PYTHONPATH=src python benchmarks/perf/run.py --quick    # CI smoke shapes

Writes the result document (schema: perf section of ``benchmarks/README.md``)
to the repo root as ``BENCH_3.json`` unless ``--output`` overrides it, and
prints the op/end-to-end summary table.  Exits non-zero if the document
fails schema validation, so a CI run doubles as a schema check; absolute
timings are never asserted.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from perf.harness import run_suite, summarize, validate  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small shapes for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per measurement (default: 3, or 2 with --quick)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_3.json",
        help="where to write the result JSON (default: <repo>/BENCH_3.json)",
    )
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick, repeats=args.repeats)
    validate(result)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(summarize(result))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
