"""The Backend interface that the sPCA driver (Algorithm 4) programs against."""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.core.config import SPCAConfig
from repro.linalg.blocks import Matrix


class Backend(abc.ABC):
    """Executes the distributed jobs of Algorithm 4.

    The driver first calls :meth:`load` once to distribute the input matrix
    (HDFS splits / a cached RDD); every job method then receives the handle
    that ``load`` returned.  Backends honour the optimization switches in the
    :class:`SPCAConfig` they were constructed with, which lets the Table 3
    ablation harness measure each optimization in isolation.
    """

    def __init__(self, config: SPCAConfig):
        self.config = config

    @property
    def kernels(self):
        """The per-block kernel backend this config resolves to.

        Resolution is memoized process-wide; a request for ``numba`` on a
        machine without the package answers with the numpy backend (after a
        one-time warning), so ``backend.kernels.name`` is the *resolved*
        name the driver stamps into trace spans and BENCH provenance.
        """
        from repro.jobs.backends import resolve_kernel_backend

        return resolve_kernel_backend(self.config.kernel_backend)

    @abc.abstractmethod
    def load(self, data: Matrix) -> Any:
        """Distribute the input matrix; returns an opaque dataset handle."""

    @abc.abstractmethod
    def column_means(self, dataset: Any) -> np.ndarray:
        """meanJob: the column-mean vector Ym (Algorithm 4, line 3)."""

    @abc.abstractmethod
    def frobenius_centered(self, dataset: Any, mean: np.ndarray) -> float:
        """FnormJob: ``ss1 = ||Yc||_F^2`` (Algorithm 4, line 4)."""

    @abc.abstractmethod
    def ytx_xtx(
        self,
        dataset: Any,
        mean: np.ndarray,
        projector: np.ndarray,
        latent_mean: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """YtXJob: the consolidated job computing both YtX and XtX.

        Args:
            dataset: handle from :meth:`load`.
            mean: Ym, length D.
            projector: the broadcast matrix ``CM = C * M^-1`` (D x d).
            latent_mean: ``Xm = Ym * CM`` (length d), the mean's image in
                latent space, used to center X without centering Y.

        Returns:
            (YtX, XtX): ``Yc' * X`` of shape (D, d) and ``X' * X`` of shape
            (d, d), where ``X = Yc * CM``.
        """

    @abc.abstractmethod
    def ss3(
        self,
        dataset: Any,
        mean: np.ndarray,
        projector: np.ndarray,
        latent_mean: np.ndarray,
        components: np.ndarray,
    ) -> float:
        """ss3Job: ``sum_n X_n * C' * Yc_n'`` (Algorithm 4, line 13)."""

    @abc.abstractmethod
    def reconstruction_error(
        self,
        dataset: Any,
        mean: np.ndarray,
        components: np.ndarray,
        sample_fraction: float,
        rng: np.random.Generator,
    ) -> float:
        """Sampled relative 1-norm reconstruction error (Section 5).

        Computes ``||Yr - Xr*C' - Ym|| / ||Yr||`` over a random subset of
        rows Yr, where Xr is the least-squares projection of the centered
        rows onto the subspace spanned by C.
        """

    # -- checkpointing ---------------------------------------------------

    def charge_checkpoint(self, nbytes: int, kind: str = "write") -> None:
        """Charge one checkpoint round trip to the platform's accounting.

        *kind* is ``"write"`` (periodic snapshot) or ``"restore"`` (resume
        reading the newest snapshot back).  Local backends store state for
        free; distributed backends charge the HDFS traffic and disk time.
        """

    # -- metrics ---------------------------------------------------------

    @property
    def simulated_seconds(self) -> float:
        """Cumulative simulated cluster seconds (0 for local backends)."""
        return 0.0

    @property
    def intermediate_bytes(self) -> int:
        """Cumulative intermediate data produced by all jobs so far."""
        return 0

    def reset_metrics(self) -> None:
        """Zero the cumulative counters (between benchmark runs)."""
