"""Information retrieval: principal terms of a document collection.

The paper motivates PCA for information retrieval ("the principal
components explain the principal terms in a set of documents").  This
example fits sPCA to a Tweets-like sparse binary document-term matrix on
the simulated Spark engine and prints the top-weighted terms of each
principal component, plus the engine's per-job byte accounting.

Run with:  python examples/text_topics.py
"""

import numpy as np

from repro.backends import SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.data import bag_of_words
from repro.engine.cluster import ClusterSpec
from repro.engine.spark import SparkContext


def main() -> None:
    n_docs, vocabulary = 8_000, 1_500
    documents = bag_of_words(
        n_docs, vocabulary, words_per_doc=10.0, topic_rank=8, seed=7
    )
    term_names = [f"term_{j:04d}" for j in range(vocabulary)]

    config = SPCAConfig(n_components=6, max_iterations=10, seed=1,
                        error_sample_fraction=0.25)
    context = SparkContext(cluster=ClusterSpec(num_nodes=4, cores_per_node=4))
    backend = SparkBackend(config, context)
    model, history = SPCA(config, backend).fit(documents)

    print(f"fit finished after {history.n_iterations} iterations "
          f"(accuracy {history.final_accuracy:.3f})")
    print()

    directions, variances = model.principal_directions(documents)
    for component in range(model.n_components):
        weights = directions[:, component]
        top = np.argsort(np.abs(weights))[::-1][:6]
        terms = ", ".join(f"{term_names[j]} ({weights[j]:+.2f})" for j in top)
        print(f"PC{component + 1} (variance {variances[component]:.1f}): {terms}")

    print()
    print("engine job summary:")
    print(context.metrics.summary())


if __name__ == "__main__":
    main()
