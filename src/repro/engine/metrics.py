"""Per-job statistics and engine-level aggregation."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any


@dataclass
class JobStats:
    """Everything measured about one distributed job (or Spark stage).

    ``intermediate_bytes`` is the quantity Section 5.2 of the paper reports:
    data produced during execution that must be handed to another phase --
    shuffle traffic plus any job output that a later job consumes (marked by
    the caller via ``output_is_intermediate``).
    """

    name: str
    n_map_tasks: int = 0
    n_reduce_tasks: int = 0
    map_output_bytes: int = 0
    shuffle_bytes: int = 0
    output_bytes: int = 0
    output_is_intermediate: bool = False
    hdfs_read_bytes: int = 0
    hdfs_write_bytes: int = 0
    driver_result_bytes: int = 0
    broadcast_bytes: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    recovery_sim_seconds: float = 0.0
    task_retries: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    faults: dict[str, int] = field(default_factory=dict)

    def count_fault(self, label: str) -> None:
        """Tally one injected fault of kind *label* against this job."""
        self.faults[label] = self.faults.get(label, 0) + 1

    @property
    def intermediate_bytes(self) -> int:
        # Raw map output is what the paper counts (Mahout's Bt mappers wrote
        # 4 TB *before* combining); the post-combine shuffle is a subset of
        # it, so take whichever phase moved more.
        total = max(self.map_output_bytes, self.shuffle_bytes) + self.driver_result_bytes
        if self.output_is_intermediate:
            total += self.output_bytes
        return total

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> JobStats:
        return cls(**payload)


@dataclass
class EngineMetrics:
    """Accumulates :class:`JobStats` across the jobs of one computation."""

    jobs: list[JobStats] = field(default_factory=list)

    def record(self, stats: JobStats) -> None:
        self.jobs.append(stats)
        # Publish to the process metrics registry when collection is on.
        # This single funnel covers both engines plus broadcast/HDFS/backoff
        # bookkeeping jobs, so registry totals reconcile exactly with the
        # sums over self.jobs (see repro.obs.metrics.reconcile_registry).
        from repro.obs.metrics import get_registry, observe_job_stats

        registry = get_registry()
        if registry.enabled:
            observe_job_stats(registry, stats)

    def reset(self) -> None:
        self.jobs.clear()

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form: the job list plus a registry-schema snapshot.

        The ``"registry"`` block is produced by replaying every job through
        a fresh :class:`~repro.obs.metrics.MetricsRegistry`, so its totals
        follow the ``repro.metrics/1`` snapshot schema and match what live
        collection would have produced for the same jobs.
        """
        from repro.obs.metrics import MetricsRegistry, observe_job_stats

        registry = MetricsRegistry()
        for job in self.jobs:
            observe_job_stats(registry, job)
        return {
            "jobs": [job.to_dict() for job in self.jobs],
            "registry": registry.snapshot(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> EngineMetrics:
        return cls(jobs=[JobStats.from_dict(job) for job in payload["jobs"]])

    @property
    def total_sim_seconds(self) -> float:
        return sum(job.sim_seconds for job in self.jobs)

    @property
    def total_wall_seconds(self) -> float:
        return sum(job.wall_seconds for job in self.jobs)

    @property
    def total_intermediate_bytes(self) -> int:
        return sum(job.intermediate_bytes for job in self.jobs)

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(job.shuffle_bytes for job in self.jobs)

    @property
    def total_map_output_bytes(self) -> int:
        return sum(job.map_output_bytes for job in self.jobs)

    @property
    def total_hdfs_read_bytes(self) -> int:
        return sum(job.hdfs_read_bytes for job in self.jobs)

    @property
    def total_hdfs_write_bytes(self) -> int:
        return sum(job.hdfs_write_bytes for job in self.jobs)

    @property
    def total_broadcast_bytes(self) -> int:
        return sum(job.broadcast_bytes for job in self.jobs)

    @property
    def total_driver_result_bytes(self) -> int:
        return sum(job.driver_result_bytes for job in self.jobs)

    @property
    def total_task_retries(self) -> int:
        return sum(job.task_retries for job in self.jobs)

    @property
    def total_recovery_sim_seconds(self) -> float:
        """Simulated seconds spent redoing work after injected faults."""
        return sum(job.recovery_sim_seconds for job in self.jobs)

    @property
    def total_faults(self) -> dict[str, int]:
        """All :attr:`JobStats.faults` merged across jobs (summed by label)."""
        merged: dict[str, int] = {}
        for job in self.jobs:
            for label, amount in job.faults.items():
                merged[label] = merged.get(label, 0) + amount
        return merged

    @property
    def total_counters(self) -> dict[str, int]:
        """All :attr:`JobStats.counters` merged across jobs (summed by name)."""
        merged: dict[str, int] = {}
        for job in self.jobs:
            for counter, amount in job.counters.items():
                merged[counter] = merged.get(counter, 0) + amount
        return merged

    def by_name(self, name: str) -> list[JobStats]:
        return [job for job in self.jobs if job.name == name]

    def summary(self) -> str:
        """Human-readable per-job table (used by examples and EXPERIMENTS)."""
        lines = [
            f"{'job':<28}{'maps':>6}{'reds':>6}{'shuffle B':>14}"
            f"{'interm. B':>14}{'hdfs r B':>12}{'hdfs w B':>12}"
            f"{'bcast B':>10}{'retry':>6}{'sim s':>10}"
        ]
        for job in self.jobs:
            lines.append(
                f"{job.name:<28}{job.n_map_tasks:>6}{job.n_reduce_tasks:>6}"
                f"{job.shuffle_bytes:>14}{job.intermediate_bytes:>14}"
                f"{job.hdfs_read_bytes:>12}{job.hdfs_write_bytes:>12}"
                f"{job.broadcast_bytes:>10}{job.task_retries:>6}"
                f"{job.sim_seconds:>10.3f}"
            )
        lines.append(
            f"{'TOTAL':<28}{'':>6}{'':>6}{self.total_shuffle_bytes:>14}"
            f"{self.total_intermediate_bytes:>14}{self.total_hdfs_read_bytes:>12}"
            f"{self.total_hdfs_write_bytes:>12}{self.total_broadcast_bytes:>10}"
            f"{self.total_task_retries:>6}{self.total_sim_seconds:>10.3f}"
        )
        if self.total_counters:
            lines.append("counters:")
            for counter in sorted(self.total_counters):
                lines.append(f"  {counter:<34}{self.total_counters[counter]:>14}")
        if self.total_faults:
            lines.append(
                f"faults (recovery {self.total_recovery_sim_seconds:.3f} sim s):"
            )
            for label in sorted(self.total_faults):
                lines.append(f"  {label:<34}{self.total_faults[label]:>14}")
        return "\n".join(lines)
