"""Reference sequential PPCA (Algorithm 1, Tipping & Bishop EM).

This is the unoptimized, centralized starting point that Section 3 of the
paper transforms into sPCA.  It materializes the centered matrix and the
latent matrix X, so it is only usable on data that fits in one machine's
memory -- exactly the limitation that motivates sPCA.  It exists here as the
ground truth that every distributed variant must match.

Note on Algorithm 1, line 8: the paper's pseudocode reads
``XtX = X'X + ss * M^-1`` but the EM M-step requires the expected second
moment ``sum_n E[x_n x_n'] = X'X + N * ss * M^-1`` (the released sPCA code
multiplies by N as well).  We implement the correct form; DESIGN.md records
the discrepancy.
"""

from __future__ import annotations

import numpy as np

from repro.core.initialization import random_initialization
from repro.core.model import PCAModel
from repro.errors import ShapeError
from repro.linalg.blocks import Matrix, is_sparse
from repro.linalg.stats import column_means
from repro.obs import get_tracer
from repro.obs.metrics import get_registry


def fit_ppca(
    data: Matrix,
    n_components: int,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    seed: int = 0,
    initial: tuple[np.ndarray, float] | None = None,
) -> PCAModel:
    """Fit PPCA with the plain EM of Algorithm 1.

    Args:
        data: input matrix Y, shape (N, D); sparse input is densified (this
            is the centralized baseline).
        n_components: number of principal components d.
        max_iterations: EM iteration budget.
        tolerance: relative-change threshold on the noise variance; the loop
            stops early once ss stabilizes.
        seed: seed for the random initialization.
        initial: optional (C, ss) warm start overriding the random init.

    Returns:
        The fitted :class:`PCAModel`.
    """
    n_samples, n_features = data.shape
    if n_components > min(n_samples, n_features):
        raise ShapeError(
            f"n_components={n_components} exceeds min(N, D)="
            f"{min(n_samples, n_features)}"
        )
    dense = np.asarray(data.todense()) if is_sparse(data) else np.asarray(data, dtype=np.float64)
    mean = column_means(dense)
    centered = dense - mean

    rng = np.random.default_rng(seed)
    if initial is None:
        components, noise_variance = random_initialization(n_features, n_components, rng)
    else:
        components, noise_variance = initial
        components = np.asarray(components, dtype=np.float64).copy()

    frobenius = float(np.sum(centered * centered))
    identity = np.eye(n_components)
    tracer = get_tracer()
    with tracer.span(
        "run",
        f"ppca.fit[N={n_samples},D={n_features},d={n_components}]",
        n_samples=n_samples,
        n_features=n_features,
        n_components=n_components,
    ):
        components, noise_variance = _em_loop(
            centered, components, noise_variance, frobenius, identity,
            n_samples, n_features, max_iterations, tolerance, tracer,
        )

    return PCAModel(
        components=components,
        mean=mean,
        noise_variance=noise_variance,
        n_samples=n_samples,
    )


def _em_loop(
    centered: np.ndarray,
    components: np.ndarray,
    noise_variance: float,
    frobenius: float,
    identity: np.ndarray,
    n_samples: int,
    n_features: int,
    max_iterations: int,
    tolerance: float,
    tracer,
) -> tuple[np.ndarray, float]:
    previous_ss = None
    for iteration in range(1, max_iterations + 1):
        with tracer.span(
            "iteration", f"ppca.iteration[{iteration}]", index=iteration
        ) as iter_span:
            moment = components.T @ components + noise_variance * identity
            moment_inv = np.linalg.inv(moment)
            latent = centered @ components @ moment_inv
            latent_gram = latent.T @ latent + n_samples * noise_variance * moment_inv
            cross = centered.T @ latent
            components = cross @ np.linalg.inv(latent_gram)
            ss2 = float(np.trace(latent_gram @ components.T @ components))
            ss3 = float(np.sum((centered @ components) * latent))
            noise_variance = (frobenius + ss2 - 2.0 * ss3) / (n_samples * n_features)
            noise_variance = max(noise_variance, 1e-12)
            if tracer.enabled:
                iter_span.set(
                    objective=noise_variance,
                    convergence_delta=(
                        None
                        if previous_ss is None
                        else abs(previous_ss - noise_variance)
                    ),
                )
            registry = get_registry()
            if registry.enabled:
                registry.counter("spca_em_iterations_total", loop="ppca").inc()
                registry.gauge("spca_em_objective", loop="ppca").set(noise_variance)
            if (previous_ss is not None
                    and abs(previous_ss - noise_variance) <= tolerance * previous_ss):
                break
            previous_ss = noise_variance
    return components, noise_variance
