"""The Spark engine: RDD semantics, shared variables, memory, failures."""

import numpy as np
import pytest

from repro.engine.cluster import ClusterSpec
from repro.engine.spark import SparkContext
from repro.errors import (
    DriverOutOfMemoryError,
    InvalidPlanError,
    JobFailedError,
)


@pytest.fixture
def sc():
    return SparkContext(cluster=ClusterSpec(num_nodes=2, cores_per_node=2))


class TestTransformations:
    def test_map_collect(self, sc):
        assert sc.parallelize(range(10)).map(lambda x: x * 2).collect() == list(
            range(0, 20, 2)
        )

    def test_filter(self, sc):
        assert sc.parallelize(range(10)).filter(lambda x: x % 2 == 0).collect() == [
            0, 2, 4, 6, 8,
        ]

    def test_flat_map(self, sc):
        result = sc.parallelize(["a b", "c"]).flat_map(str.split).collect()
        assert result == ["a", "b", "c"]

    def test_map_partitions(self, sc):
        sums = sc.parallelize(range(10), 2).map_partitions(lambda p: [sum(p)]).collect()
        assert sum(sums) == 45
        assert len(sums) == 2

    def test_map_partitions_with_index(self, sc):
        tagged = (
            sc.parallelize(range(4), 2)
            .map_partitions_with_index(lambda i, p: [(i, len(p))])
            .collect()
        )
        assert tagged == [(0, 2), (1, 2)]

    def test_chained_laziness(self, sc):
        calls = []
        rdd = sc.parallelize(range(3)).map(lambda x: calls.append(x) or x)
        assert calls == []  # nothing computed yet
        rdd.collect()
        assert sorted(calls) == [0, 1, 2]

    def test_union(self, sc):
        a = sc.parallelize([1, 2])
        b = sc.parallelize([3, 4])
        assert sorted(a.union(b).collect()) == [1, 2, 3, 4]

    def test_union_cross_context_rejected(self, sc):
        other = SparkContext()
        with pytest.raises(InvalidPlanError):
            sc.parallelize([1]).union(other.parallelize([2]))

    def test_sample(self, sc):
        sampled = sc.parallelize(range(1000), 4).sample(0.1, seed=3).collect()
        assert 40 < len(sampled) < 200
        with pytest.raises(InvalidPlanError):
            sc.parallelize([1]).sample(0.0)

    def test_zip_with_index(self, sc):
        indexed = sc.parallelize(["a", "b", "c", "d"], 2).zip_with_index().collect()
        assert indexed == [("a", 0), ("b", 1), ("c", 2), ("d", 3)]


class TestPairOperations:
    def test_reduce_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("b", 4)]
        result = dict(sc.parallelize(pairs, 2).reduce_by_key(lambda a, b: a + b).collect())
        assert result == {"a": 4, "b": 6}

    def test_group_by_key(self, sc):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        result = dict(sc.parallelize(pairs, 2).group_by_key().collect())
        assert sorted(result["a"]) == [1, 3]
        assert result["b"] == [2]

    def test_shuffle_charges_bytes(self, sc):
        pairs = [(i % 5, np.zeros(100)) for i in range(50)]
        sc.parallelize(pairs, 4).reduce_by_key(lambda a, b: a + b).collect()
        assert any(job.shuffle_bytes > 0 for job in sc.metrics.jobs)

    def test_map_values_keys_values(self, sc):
        rdd = sc.parallelize([("a", 1), ("b", 2)])
        assert rdd.map_values(lambda v: v * 10).collect() == [("a", 10), ("b", 20)]
        assert rdd.keys().collect() == ["a", "b"]
        assert rdd.values().collect() == [1, 2]


class TestActions:
    def test_count(self, sc):
        assert sc.parallelize(range(33), 4).count() == 33

    def test_reduce(self, sc):
        assert sc.parallelize(range(10), 3).reduce(lambda a, b: a + b) == 45

    def test_fold_and_sum(self, sc):
        assert sc.parallelize(range(5), 2).fold(0, lambda a, b: a + b) == 10
        assert sc.parallelize(range(5), 2).sum() == 10

    def test_aggregate(self, sc):
        # (count, sum) in one pass
        count, total = sc.parallelize(range(10), 3).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + 1, acc[1] + x),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (count, total) == (10, 45)

    def test_take_and_first(self, sc):
        rdd = sc.parallelize(range(100), 8)
        assert rdd.take(3) == [0, 1, 2]
        assert rdd.first() == 0

    def test_foreach_with_accumulator(self, sc):
        acc = sc.accumulator(0)
        sc.parallelize(range(10), 2).foreach(lambda x: acc.add(x))
        assert acc.value == 45

    def test_parallelize_empty_rejected(self, sc):
        with pytest.raises(InvalidPlanError):
            sc.parallelize([])


class TestSharedVariables:
    def test_broadcast_value_and_bytes(self, sc):
        matrix = np.ones((100, 10))
        bc = sc.broadcast(matrix)
        np.testing.assert_array_equal(bc.value, matrix)
        broadcast_jobs = [j for j in sc.metrics.jobs if j.name == "broadcast"]
        assert broadcast_jobs[0].broadcast_bytes >= matrix.nbytes * sc.cluster.num_nodes

    def test_accumulator_matrix_sum(self, sc):
        acc = sc.accumulator(np.zeros((3, 3)))
        sc.parallelize(range(6), 3).foreach(lambda x: acc.add(np.eye(3)))
        np.testing.assert_allclose(acc.value, 6 * np.eye(3))

    def test_accumulator_bytes_charged_to_stage(self, sc):
        acc = sc.accumulator(np.zeros(1000))
        sc.parallelize(range(4), 4).foreach_partition(
            lambda p: acc.add(np.ones(1000))
        )
        stage = [j for j in sc.metrics.jobs if j.name == "foreachPartition"][0]
        assert stage.driver_result_bytes >= 4 * 8000


class TestCaching:
    def test_cache_skips_recompute(self, sc):
        calls = []
        rdd = sc.parallelize(range(8), 2).map(lambda x: calls.append(x) or x).cache()
        rdd.count()
        first_pass = len(calls)
        rdd.count()
        assert len(calls) == first_pass  # second action used the cache

    def test_unpersist_recomputes(self, sc):
        calls = []
        rdd = sc.parallelize(range(4), 2).map(lambda x: calls.append(x) or x).cache()
        rdd.count()
        rdd.unpersist()
        rdd.count()
        assert len(calls) == 8

    def test_cache_spills_to_disk_when_over_memory(self):
        tiny = ClusterSpec(num_nodes=1, cores_per_node=2, memory_per_node_mb=0.001)
        sc = SparkContext(cluster=tiny)
        rdd = sc.parallelize([np.zeros(1000) for _ in range(8)], 4).cache()
        rdd.count()
        assert sc.block_manager.disk_bytes > 0
        # Cached-on-disk reads are charged as disk traffic on later stages.
        rdd.count()
        assert sc.metrics.jobs[-1].hdfs_read_bytes > 0

    def test_block_manager_accounting(self, sc):
        rdd = sc.parallelize([np.zeros(100) for _ in range(4)], 2).cache()
        rdd.count()
        assert sc.block_manager.cached_bytes > 0
        rdd.unpersist()
        assert sc.block_manager.cached_bytes == 0


class TestDriverMemory:
    def test_driver_oom_on_large_collect(self):
        cluster = ClusterSpec(num_nodes=1, cores_per_node=2, driver_memory_mb=0.01)
        sc = SparkContext(cluster=cluster)
        rdd = sc.parallelize([np.zeros(10000) for _ in range(4)], 2)
        with pytest.raises(DriverOutOfMemoryError):
            rdd.collect()

    def test_peak_memory_tracked(self, sc):
        sc.parallelize([np.zeros(1000)], 1).collect()
        assert sc.driver.peak_bytes >= 8000
        assert sc.driver.used_bytes == 0  # transient allocation released


class TestFaultTolerance:
    def test_lineage_recompute_preserves_results(self):
        flaky = SparkContext(failure_rate=0.3, seed=5)
        result = flaky.parallelize(range(20), 5).map(lambda x: x * x).sum()
        assert result == sum(x * x for x in range(20))
        assert any(job.task_retries > 0 for job in flaky.metrics.jobs)

    def test_accumulator_exactly_once_under_failures(self):
        flaky = SparkContext(failure_rate=0.4, seed=11)
        acc = flaky.accumulator(0)
        flaky.parallelize(range(10), 5).foreach(lambda x: acc.add(1))
        assert acc.value == 10  # retried tasks must not double-count

    def test_hopeless_failure_rate_raises(self):
        doomed = SparkContext(failure_rate=0.99, max_task_attempts=3, seed=2)
        with pytest.raises(JobFailedError):
            doomed.parallelize(range(4), 2).count()

    def test_invalid_failure_rate(self):
        with pytest.raises(InvalidPlanError):
            SparkContext(failure_rate=-0.1)


class TestSimulatedTime:
    def test_stage_records_sim_seconds(self, sc):
        sc.parallelize(range(100), 4).map(lambda x: x + 1).collect()
        collect_stage = [j for j in sc.metrics.jobs if j.name == "collect"][0]
        assert collect_stage.sim_seconds >= sc.cost_model.per_job_overhead_s

    def test_spark_overhead_smaller_than_hadoop(self):
        from repro.engine.simtime import HADOOP_LIKE_COSTS, SPARK_LIKE_COSTS

        assert SPARK_LIKE_COSTS.per_job_overhead_s < HADOOP_LIKE_COSTS.per_job_overhead_s
