"""Dimensionality reduction of image features (the paper's Images workload).

SIFT-like 128-dimensional descriptors are compressed to d = 16 latent
dimensions with sPCA and the reconstruction quality is compared against the
MLlib-style covariance PCA -- the one case in Table 2 where the
covariance method is the right tool, because D is small and dense.

Run with:  python examples/image_compression.py
"""

import numpy as np

from repro.baselines import CovariancePCA
from repro.core import SPCA, SPCAConfig
from repro.data import sift_features
from repro.engine.cluster import ClusterSpec
from repro.engine.spark import SparkContext
from repro.metrics import accuracy_from_error, reconstruction_error, subspace_angle_degrees


def main() -> None:
    features = sift_features(n_vectors=20_000, n_dims=128, n_clusters=12, seed=3)
    d = 8

    config = SPCAConfig(n_components=d, max_iterations=20, tolerance=1e-6, seed=0,
                        compute_error_every_iteration=False)
    spca_model, history = SPCA(config).fit(features)

    mllib = CovariancePCA(d, SparkContext(cluster=ClusterSpec(num_nodes=4, cores_per_node=4)))
    mllib_result = mllib.fit(features)

    spca_error = reconstruction_error(features, spca_model.components, spca_model.mean)
    mllib_error = reconstruction_error(
        features, mllib_result.model.components, mllib_result.model.mean
    )
    # The trailing directions of a flat spectrum are ill-determined for any
    # PCA method, so compare the dominant half of the recovered subspaces.
    spca_top, _ = spca_model.principal_directions(features)
    mllib_top, _ = mllib_result.model.principal_directions(features)
    angle = subspace_angle_degrees(spca_top[:, : d // 2], mllib_top[:, : d // 2])

    compression = features.shape[1] / d
    print(f"compressing 128-dim SIFT features to {d} dims ({compression:.0f}x)")
    print(f"sPCA accuracy:  {accuracy_from_error(spca_error):.4f} "
          f"({history.n_iterations} EM iterations)")
    print(f"MLlib accuracy: {accuracy_from_error(mllib_error):.4f} (one pass)")
    print(f"subspace angle between the dominant directions: {angle:.2f} degrees")

    # Reconstruct a single descriptor and show the per-band error.
    sample = features[:1]
    restored = spca_model.reconstruct(sample)
    worst = np.abs(sample - restored).max()
    print(f"worst per-dimension reconstruction error on one vector: {worst:.1f} "
          f"(feature range 0-512)")


if __name__ == "__main__":
    main()
