"""The sPCA MapReduce jobs of Section 4.1.

Input records are ``(start_row, block)`` pairs where *block* is a CSR or
dense row block.  Small matrices (Ym, CM, Xm, C) travel in the job
configuration -- the simulator's stand-in for Hadoop's DistributedCache.

The YtX mapper demonstrates the paper's *stateful combiner*: instead of
emitting a dense partial matrix per input record (which would swamp the
combiners -- the failure mode the paper measures in Mahout's Bt job), it
keeps in-memory partial sums ``XtX-p``/``YtX-p`` across its whole split and
writes them once from ``cleanup``.
"""

from __future__ import annotations

import numpy as np

from repro.engine.mapreduce.api import Mapper, Reducer
from repro.jobs.backends import kernel_backend_from_config
from repro.linalg.stats import sample_rows

KEY_SUMS = "mean/sums"
KEY_COUNT = "mean/count"
KEY_FNORM = "fnorm"
KEY_YTX = "YtX"
KEY_YTX_DATA = "YtX/data"
KEY_XSUM = "YtX/xsum"
KEY_XTX = "XtX"
KEY_SS3 = "ss3"
KEY_RESIDUAL = "error/residual"
KEY_MAGNITUDE = "error/magnitude"


class MatrixSumReducer(Reducer):
    """Sums numpy partials per key (works as combiner and reducer)."""

    def reduce(self, key, values, ctx):
        total = values[0]
        for value in values[1:]:
            total = total + value
        yield key, total


class MeanMapper(Mapper):
    """meanJob: per-split column sums and row counts, emitted from cleanup."""

    def setup(self, ctx):
        self.sums = None
        self.count = 0

    def map(self, key, value, ctx):
        sums, rows = kernel_backend_from_config(ctx.config).sums(value)
        self.sums = sums if self.sums is None else self.sums + sums
        self.count += rows
        return ()

    def map_batch(self, records, ctx):
        if records:
            kb = kernel_backend_from_config(ctx.config)
            stacked = kb.stack([value for _, value in records])
            sums, rows = kb.sums(stacked)
            self.sums = sums if self.sums is None else self.sums + sums
            self.count += rows
        return []

    def cleanup(self, ctx):
        if self.sums is not None:
            yield KEY_SUMS, self.sums
            yield KEY_COUNT, self.count


class FnormMapper(Mapper):
    """FnormJob: per-split share of ||Yc||_F^2.

    Config: ``mean`` (Ym), ``efficient`` (Algorithm 3 vs Algorithm 2).
    """

    def setup(self, ctx):
        self.total = 0.0

    def map(self, key, value, ctx):
        self.total += kernel_backend_from_config(ctx.config).frobenius(
            value, ctx.config["mean"], ctx.config["efficient"]
        )
        return ()

    def map_batch(self, records, ctx):
        if records:
            kb = kernel_backend_from_config(ctx.config)
            stacked = kb.stack([value for _, value in records])
            self.total += kb.frobenius(
                stacked, ctx.config["mean"], ctx.config["efficient"]
            )
        return []

    def cleanup(self, ctx):
        yield KEY_FNORM, self.total


class YtXMapper(Mapper):
    """The consolidated YtXJob mapper with a stateful combiner.

    Config: ``mean``, ``projector`` (CM), ``latent_mean`` (Xm),
    ``mean_propagation``.  Input values are either plain Y blocks or, in the
    materialized-X ablation, ``(y_block, x_block)`` pairs.

    With mean propagation the mapper ships the *sparse* data product
    ``Y_blk' X_blk`` plus a small d-vector of latent column sums; the driver
    applies the dense mean correction ``Ym (x) colsum(X)`` once.  This keeps
    mapper output proportional to the block's non-zero columns -- the reason
    sPCA's mapper output stays moderate where Mahout's explodes
    (Section 5.2).
    """

    def setup(self, ctx):
        self.ytx_partial = None
        self.xsum_partial = None
        self.xtx_partial = None

    def map(self, key, value, ctx):
        block, latent = _split_value(value)
        self._consume(block, latent, ctx)
        return ()

    def map_batch(self, records, ctx):
        if records:
            blocks, latents = [], []
            for _, value in records:
                block, latent = _split_value(value)
                blocks.append(block)
                latents.append(latent)
            kb = kernel_backend_from_config(ctx.config)
            stacked_latent = (
                kb.stack_latents(latents) if latents[0] is not None else None
            )
            self._consume(kb.stack(blocks), stacked_latent, ctx)
        return []

    def _consume(self, block, latent, ctx):
        import scipy.sparse as sp

        config = ctx.config
        kb = kernel_backend_from_config(config)
        mean_prop = config["mean_propagation"]
        if latent is None:
            latent = kb.latent(
                block, config["mean"], config["projector"],
                config["latent_mean"], mean_prop,
            )
        if mean_prop and sp.issparse(block):
            ytx = (block.T @ sp.csr_matrix(latent)).tocsr()
            self.xsum_partial = (
                latent.sum(axis=0)
                if self.xsum_partial is None
                else self.xsum_partial + latent.sum(axis=0)
            )
        elif mean_prop:
            ytx = kb.ytx_xtx(
                block, config["mean"], config["projector"],
                config["latent_mean"], True, latent=latent,
            )[0]
        else:
            ytx = kb.ytx_xtx(
                block, config["mean"], config["projector"],
                config["latent_mean"], False, latent=latent,
            )[0]
        xtx = latent.T @ latent
        ctx.increment("ytx/rows", block.shape[0])
        self.ytx_partial = ytx if self.ytx_partial is None else self.ytx_partial + ytx
        self.xtx_partial = xtx if self.xtx_partial is None else self.xtx_partial + xtx

    def cleanup(self, ctx):
        import scipy.sparse as sp

        if self.ytx_partial is None:
            return
        if self.xsum_partial is not None:
            partial = self.ytx_partial
            if sp.issparse(partial):
                dense_bytes = partial.shape[0] * partial.shape[1] * 8
                sparse_bytes = (
                    partial.data.nbytes + partial.indices.nbytes + partial.indptr.nbytes
                )
                if sparse_bytes >= dense_bytes:
                    # Saturated split: dense is the smaller encoding.
                    partial = np.asarray(partial.todense())
            yield KEY_YTX_DATA, partial
            yield KEY_XSUM, self.xsum_partial
        else:
            yield KEY_YTX, self.ytx_partial
        yield KEY_XTX, self.xtx_partial


class NaiveYtXMapper(YtXMapper):
    """Ablation of the stateful combiner: one dense partial per record.

    This is how a straightforward port would behave -- and why Mahout's
    mappers produced 4 TB of output on the Tweets dataset (Section 5.2).
    """

    # Per-record emission is the entire point of this ablation: it models
    # the pre-optimization dataflow that YtXMapper's cleanup combiner fixes.
    def map(self, key, value, ctx):  # repro-lint: disable=DF004
        block, latent = _split_value(value)
        ytx, xtx = kernel_backend_from_config(ctx.config).ytx_xtx(
            block,
            ctx.config["mean"],
            ctx.config["projector"],
            ctx.config["latent_mean"],
            ctx.config["mean_propagation"],
            latent=latent,
        )
        yield KEY_YTX, ytx
        yield KEY_XTX, xtx

    def map_batch(self, records, ctx):
        # Stacking would silently reinstate the combiner this ablation
        # removes; keep the naive per-record dataflow under batching too.
        return Mapper.map_batch(self, records, ctx)


class XMaterializeMapper(Mapper):
    """Ablation of X recomputation: write the latent matrix X to HDFS.

    Map-only job whose output -- the N x d matrix X in blocks -- is exactly
    the intermediate data sPCA's redundant-recomputation design avoids
    (Section 3.2: "nearly 500 GB of intermediate data").
    """

    def map(self, key, value, ctx):
        latent = kernel_backend_from_config(ctx.config).latent(
            value,
            ctx.config["mean"],
            ctx.config["projector"],
            ctx.config["latent_mean"],
            ctx.config["mean_propagation"],
        )
        yield key, latent

    def map_batch(self, records, ctx):
        # Output is keyed per record (downstream joins X blocks back to
        # their Y blocks by start row), so the batch path keeps per-record
        # kernel calls and only drops the per-record generator machinery.
        config = ctx.config
        kb = kernel_backend_from_config(config)
        return [
            (
                key,
                kb.latent(
                    value, config["mean"], config["projector"],
                    config["latent_mean"], config["mean_propagation"],
                ),
            )
            for key, value in records
        ]


class SS3Mapper(Mapper):
    """ss3Job: per-split share of ``sum_n X_n * C' * Yc_n'``.

    Config adds ``components`` (the freshly updated C).
    """

    def setup(self, ctx):
        self.total = 0.0

    def map(self, key, value, ctx):
        block, latent = _split_value(value)
        self.total += kernel_backend_from_config(ctx.config).ss3(
            block,
            ctx.config["mean"],
            ctx.config["projector"],
            ctx.config["latent_mean"],
            ctx.config["components"],
            ctx.config["mean_propagation"],
            latent=latent,
        )
        return ()

    def map_batch(self, records, ctx):
        if records:
            blocks, latents = [], []
            for _, value in records:
                block, latent = _split_value(value)
                blocks.append(block)
                latents.append(latent)
            kb = kernel_backend_from_config(ctx.config)
            self.total += kb.ss3(
                kb.stack(blocks),
                ctx.config["mean"],
                ctx.config["projector"],
                ctx.config["latent_mean"],
                ctx.config["components"],
                ctx.config["mean_propagation"],
                latent=(
                    kb.stack_latents(latents)
                    if latents[0] is not None
                    else None
                ),
            )
        return []

    def cleanup(self, ctx):
        yield KEY_SS3, self.total


class ErrorMapper(Mapper):
    """Reconstruction-error job over a per-task row sample.

    Config: ``mean``, ``components``, ``ls_projector``, ``sample_fraction``,
    ``seed``, ``mean_propagation``.
    """

    def setup(self, ctx):
        self.residual = None
        self.magnitude = None

    def map(self, key, value, ctx):
        block = value
        fraction = ctx.config["sample_fraction"]
        if fraction < 1.0:
            rng = np.random.default_rng((ctx.config["seed"], ctx.task_id, key))
            block = sample_rows(block, fraction, rng)
        residual, magnitude = kernel_backend_from_config(ctx.config).error_parts(
            block,
            ctx.config["mean"],
            ctx.config["components"],
            ctx.config["ls_projector"],
            ctx.config["mean_propagation"],
        )
        self.residual = residual if self.residual is None else self.residual + residual
        self.magnitude = magnitude if self.magnitude is None else self.magnitude + magnitude
        return ()

    def map_batch(self, records, ctx):
        if ctx.config["sample_fraction"] < 1.0:
            # Row sampling is seeded per record key; batching would change
            # which rows get sampled, so keep the per-record path.
            return Mapper.map_batch(self, records, ctx)
        if records:
            kb = kernel_backend_from_config(ctx.config)
            stacked = kb.stack([value for _, value in records])
            residual, magnitude = kb.error_parts(
                stacked,
                ctx.config["mean"],
                ctx.config["components"],
                ctx.config["ls_projector"],
                ctx.config["mean_propagation"],
            )
            self.residual = (
                residual if self.residual is None else self.residual + residual
            )
            self.magnitude = (
                magnitude if self.magnitude is None else self.magnitude + magnitude
            )
        return []

    def cleanup(self, ctx):
        if self.residual is not None:
            yield KEY_RESIDUAL, self.residual
            yield KEY_MAGNITUDE, self.magnitude


def _split_value(value):
    """Input values are Y blocks, or (Y block, X block) pairs in ablation."""
    if isinstance(value, tuple):
        return value
    return value, None
