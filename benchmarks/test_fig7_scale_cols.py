"""Figure 7: time to 95% ideal accuracy vs columns, on Spark.

Paper shape: MLlib-PCA fails beyond D = 6,000 (scaled: 600) because the
D x D covariance must fit in the driver; below that boundary its running
time grows quadratically with D while sPCA-Spark grows ~linearly, so the
gap widens with D.
"""

import pytest

from harness import FAILED, dataset_ideal_accuracy, run_mllib, run_spca
from repro.data.generators import bag_of_words

COLUMN_SWEEP = (200, 400, 600, 1500, 4000, 7150)
N_ROWS = 8_000


@pytest.mark.benchmark(group="fig7")
def test_fig7_time_vs_columns(benchmark, report):
    results = {}

    def run_all():
        from harness import default_config

        for n_cols in COLUMN_SWEEP:
            data = bag_of_words(N_ROWS, n_cols, words_per_doc=8.0, seed=707)
            ideal = dataset_ideal_accuracy(data)
            # A generous error sample keeps the per-iteration accuracy
            # estimate stable, so the target-crossing iteration -- and with
            # it the reported time -- is deterministic at the boundary.
            config = default_config(ideal_accuracy=ideal, error_sample_fraction=0.5)
            results[n_cols] = (
                run_spca(data, "spark", ideal=ideal, config=config),
                run_mllib(data),
            )
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(f"Figure 7: time (sim s) to 95% ideal accuracy vs columns (N={N_ROWS})")
    report(f"{'columns':>9}{'sPCA-Spark':>13}{'MLlib-PCA':>12}")
    for n_cols, (spca, mllib) in results.items():
        mllib_cell = FAILED if mllib.failed else f"{mllib.effective_time:.1f}"
        report(f"{n_cols:>9,}{spca.effective_time:>13.1f}{mllib_cell:>12}")

    # MLlib's failure boundary: works through 600 columns, fails beyond.
    for n_cols in COLUMN_SWEEP:
        spca, mllib = results[n_cols]
        assert mllib.failed == (n_cols > 600), n_cols
        assert not spca.failed  # sPCA never fails

    # MLlib's time grows quadratically with D (x9 for x3 columns, within
    # slack); sPCA grows far more slowly over the same range.
    mllib_growth = results[600][1].effective_time / results[200][1].effective_time
    spca_growth = results[600][0].effective_time / results[200][0].effective_time
    assert mllib_growth > 3.0
    assert spca_growth < mllib_growth

    # At the boundary size, sPCA-Spark is faster (paper: ~half the time).
    assert results[600][0].effective_time < results[600][1].effective_time
