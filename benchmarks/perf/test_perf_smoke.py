"""Smoke test for the perf harness: quick shapes, schema only.

Asserts structure and the batch-wins-at-fine-granularity invariant on tiny
inputs; never absolute times, so it cannot flake on slow CI machines.
"""

import json

import pytest

from perf.harness import BENCH_NAME, run_suite, summarize, validate


@pytest.fixture(scope="module")
def result():
    return run_suite(quick=True, repeats=1)


def test_quick_suite_passes_validation(result):
    validate(result)
    assert result["bench"] == BENCH_NAME
    assert result["quick"] is True


def test_result_is_json_serializable(result):
    parsed = json.loads(json.dumps(result))
    validate(parsed)


def test_covers_both_backends(result):
    backends = {entry["backend"] for entry in result["end_to_end"]}
    assert backends == {"mapreduce", "spark"}


def test_ops_cover_the_pipeline_hot_spots(result):
    names = {op["name"] for op in result["ops"]}
    assert names == {
        "shuffle_partitioning",
        "sizeof_memoization",
        "map_task_dispatch",
    }


def test_summary_renders(result):
    text = summarize(result)
    assert BENCH_NAME in text
    assert "mapreduce" in text


def test_validate_rejects_malformed_documents(result):
    broken = dict(result)
    broken.pop("end_to_end")
    with pytest.raises(ValueError):
        validate(broken)
    wrong_bench = dict(result, bench="BENCH_999")
    with pytest.raises(ValueError):
        validate(wrong_bench)
