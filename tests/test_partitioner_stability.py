"""Pinned partition assignments for both engines' crc32 partitioners.

Shuffle routing must never drift: checkpointed runs resume against shuffles
produced by earlier processes, the equivalence properties compare byte
accounting across executors, and the paper's communication numbers depend on
which reducer each key lands on.  These tests pin the exact crc32 values and
bucket assignments for the key shapes the sPCA jobs actually emit, so any
change to the hash (a different digest, a missing ``& 0xFFFFFFFF`` unsigned
mask, a repr change) fails loudly instead of silently re-routing records.
"""

import zlib

from repro.engine.mapreduce.runtime import _partition_of, _partition_pairs
from repro.engine.spark.rdd import _hash_partition, _PartitionCache

# crc32(repr(key)) & 0xFFFFFFFF for the keys sPCA shuffles actually carry:
# named matrix blocks, string stats keys, integer row-block ids, and a
# composite tuple key.  Computed once and pinned.
PINNED_CRC32 = {
    "YtX": 2270619290,
    "XtX": 1072333311,
    "mean/sums": 3296415089,
    "fnorm": 783288045,
    "ss3": 3416198441,
    0: 4108050209,
    1: 2212294583,
    2: 450215437,
    7: 1790921346,
    41: 2871910706,
    (3, "block"): 2102945938,
    -1: 808273962,
}

# The bucket each key maps to for representative reducer counts.
PINNED_BUCKETS = {
    2: {"YtX": 0, "XtX": 1, "mean/sums": 1, "fnorm": 1, "ss3": 1,
        0: 1, 1: 1, 2: 1, 7: 0, 41: 0, (3, "block"): 0, -1: 0},
    3: {"YtX": 2, "XtX": 0, "mean/sums": 2, "fnorm": 0, "ss3": 2,
        0: 2, 1: 2, 2: 1, 7: 0, 41: 2, (3, "block"): 1, -1: 0},
    5: {"YtX": 0, "XtX": 1, "mean/sums": 4, "fnorm": 0, "ss3": 1,
        0: 4, 1: 3, 2: 2, 7: 1, 41: 1, (3, "block"): 3, -1: 2},
    8: {"YtX": 2, "XtX": 7, "mean/sums": 1, "fnorm": 5, "ss3": 1,
        0: 1, 1: 7, 2: 5, 7: 2, 41: 2, (3, "block"): 2, -1: 2},
}


def test_crc32_values_are_unsigned_and_pinned():
    for key, expected in PINNED_CRC32.items():
        value = zlib.crc32(repr(key).encode()) & 0xFFFFFFFF
        assert value == expected, key
        assert 0 <= value <= 0xFFFFFFFF


def test_mapreduce_partition_of_pinned():
    for n, buckets in PINNED_BUCKETS.items():
        for key, expected in buckets.items():
            assert _partition_of(key, n) == expected, (key, n)


def test_spark_hash_partition_pinned():
    for n, buckets in PINNED_BUCKETS.items():
        for key, expected in buckets.items():
            assert _hash_partition(key, n) == expected, (key, n)


def test_engines_agree_on_every_key():
    # Both engines share one routing function in spirit; keep it literal.
    for n in (1, 2, 3, 4, 5, 7, 8, 16):
        for key in PINNED_CRC32:
            assert _partition_of(key, n) == _hash_partition(key, n), (key, n)


def test_partition_pairs_matches_partition_of():
    pairs = [(key, i) for i, key in enumerate(PINNED_CRC32)] * 3
    for n in (2, 3, 5):
        buckets = _partition_pairs(pairs, n)
        assert sum(len(b) for b in buckets) == len(pairs)
        for partition, bucket in enumerate(buckets):
            for key, _ in bucket:
                assert _partition_of(key, n) == partition, (key, n)


def test_partition_cache_matches_hash_partition():
    for n in (2, 3, 5):
        cache = _PartitionCache(n)
        for key in PINNED_CRC32:
            assert cache(key) == _hash_partition(key, n) == cache(key), (key, n)


def test_mask_guards_signed_crc32():
    # If an implementation ever returned the signed 32-bit value, the mask
    # must still recover the same unsigned routing.
    for key, unsigned in PINNED_CRC32.items():
        signed = unsigned - 0x100000000 if unsigned >= 0x80000000 else unsigned
        assert signed & 0xFFFFFFFF == unsigned, key
