"""The distributed-dataflow rule registry.

Each rule is keyed to the sPCA optimization it protects (paper Sections 3-4):
the whole point of the paper is that naive dataflow patterns silently destroy
performance or correctness on distributed platforms, and every one of those
patterns is mechanically recognizable in the job/pipeline source.

Rules are data here; the matching logic lives in :mod:`repro.lint.visitors`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One checkable dataflow rule.

    Attributes:
        code: stable identifier used in reports and suppression comments.
        name: short kebab-case name.
        summary: one-line description of the violation.
        paper_ref: the paper section whose optimization the rule protects.
        rationale: why the pattern hurts on a distributed platform.
    """

    code: str
    name: str
    summary: str
    paper_ref: str
    rationale: str


DF001 = Rule(
    code="DF001",
    name="closure-captured-array",
    summary="large array captured in a worker closure without Broadcast",
    paper_ref="Section 4.3 (broadcast of CM/Ym/Xm for in-memory multiplication)",
    rationale=(
        "An ndarray/sparse matrix captured directly in an RDD or stage closure "
        "is serialized into every task, shipping one copy per task instead of "
        "one copy per node and defeating the in-memory broadcast multiplication."
    ),
)

DF002 = Rule(
    code="DF002",
    name="non-monoid-combiner",
    summary="combiner uses a non-commutative/non-associative operation",
    paper_ref="Section 4.1 (partial aggregation via combiners/accumulators)",
    rationale=(
        "Combiners and accumulator merge functions run in a platform-chosen "
        "order and grouping; subtraction, division and order-dependent list "
        "building give different results under retries and speculative tasks. "
        "Partial aggregation must be a commutative monoid."
    ),
)

DF003 = Rule(
    code="DF003",
    name="driver-state-mutation",
    summary="driver-side state mutated inside a map/reduce/RDD closure",
    paper_ref="Section 4.2 (accumulators are the sanctioned reverse channel)",
    rationale=(
        "A task that mutates driver-scope objects double-counts its effect "
        "when the task is retried or speculatively duplicated; only "
        "accumulators stage updates transactionally per task attempt."
    ),
)

DF004 = Rule(
    code="DF004",
    name="per-record-emission",
    summary="mapper emits a computed partial per record under an aggregation key",
    paper_ref="Section 4.1 (stateful cleanup combiner; Mahout's Bt-job blowup)",
    rationale=(
        "Emitting one partial matrix per input record swamps the combiners "
        "with intermediate data (the 4 TB Bt-job failure mode of Section 5.2); "
        "accumulate across the split and emit once from cleanup()."
    ),
)

DF005 = Rule(
    code="DF005",
    name="uncached-iterative-rdd",
    summary="RDD reused across iterations without cache(), or action inside a transformation",
    paper_ref="Section 4.2 (caching the input RDD across EM iterations)",
    rationale=(
        "An uncached RDD is recomputed from lineage by every action of the EM "
        "loop, and an action invoked inside a transformation runs a nested "
        "job per task; both turn O(1) passes into O(iterations) passes."
    ),
)

CT001 = Rule(
    code="CT001",
    name="contract-shape-conflict",
    summary="call site binds a shape-contract symbol to conflicting literal dimensions",
    paper_ref="Section 3 (the d << D algebra only holds when shapes line up)",
    rationale=(
        "A @contract declares symbolic shapes shared across arguments; a call "
        "site whose literal dimensions bind one symbol to two different values "
        "will fail at runtime on the cluster instead of at review time."
    ),
)

EX001 = Rule(
    code="EX001",
    name="task-mutates-driver-state",
    summary="task function handed to an executor mutates shared driver state",
    paper_ref="Section 4.2 (determinism-by-construction job design)",
    rationale=(
        "A function dispatched through TaskExecutor.run_tasks runs "
        "concurrently with its siblings; mutating driver-scope state from "
        "inside it races with other tasks and with the commit loop, breaking "
        "the bit-identical-to-serial guarantee of the execute/commit split. "
        "Return pure outcome records and let the driver commit them in "
        "task-index order."
    ),
)

EX002 = Rule(
    code="EX002",
    name="unpicklable-task-closure",
    summary="closure or lambda task function reaches the process executor directly",
    paper_ref="Section 4.3 (tasks ship code by reference, data by broadcast)",
    rationale=(
        "A lambda or locally-defined task function cannot cross a "
        "ProcessPoolExecutor's pickle pipe: the processes backend silently "
        "falls back to in-process execution, defeating multi-core dispatch. "
        "Define the task body at module level, or route closure stages "
        "through executor.closure_executor() so the fallback is explicit."
    ),
)

EX003 = Rule(
    code="EX003",
    name="side-effect-outside-commit",
    summary="cache put / counter / trace / metrics side effect performed inside a task",
    paper_ref="Section 4.2 (accumulators stage updates per task attempt)",
    rationale=(
        "Counters, cache puts, accumulator merges, metrics records, and "
        "trace events must be buffered in the task's scope and replayed by "
        "the driver in task-index order; emitting them directly from a "
        "concurrently-executing task interleaves them nondeterministically "
        "and double-applies them under retry."
    ),
)

EX004 = Rule(
    code="EX004",
    name="shm-segment-lifetime",
    summary="shared-memory segment created or attached without lifecycle pairing",
    paper_ref="Section 4.3 (one copy per node: zero-copy block transport)",
    rationale=(
        "A SharedMemory segment created without a registry store, finalizer, "
        "or unlink leaks a file descriptor and /dev/shm pages past the fit; "
        "an attach without a resource_tracker unregister lets a worker's "
        "exit destroy segments the driver still owns."
    ),
)

EX005 = Rule(
    code="EX005",
    name="nondeterministic-task",
    summary="wall-clock, unseeded RNG, salted hash, or set-ordering inside task/kernel code",
    paper_ref="Section 4.1 (partial aggregation must be order-insensitive)",
    rationale=(
        "Task functions and kernels must be deterministic functions of their "
        "payloads: wall-clock reads, unseeded random sources, the salted "
        "built-in hash(), and set-iteration order all vary across runs, "
        "workers, and retries, so reductions built on them are not "
        "reproducible.  Non-associative float accumulation in combiners is "
        "the runtime half, covered by the combiner-algebra verifier."
    ),
)

RULES: dict[str, Rule] = {
    rule.code: rule
    for rule in (
        DF001, DF002, DF003, DF004, DF005, CT001,
        EX001, EX002, EX003, EX004, EX005,
    )
}


def get_rule(code: str) -> Rule:
    """Look up a rule by code, raising ``KeyError`` with the known codes."""
    try:
        return RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown rule code {code!r}; known codes: {', '.join(sorted(RULES))}"
        ) from None
