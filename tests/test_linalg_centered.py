"""Mean-propagation identities must match explicit centering exactly."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.linalg import (
    centered_gram,
    centered_row,
    centered_times,
    centered_transpose_times,
    column_means,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def _dense_centered(matrix, mean):
    dense = np.asarray(matrix.todense()) if sp.issparse(matrix) else np.asarray(matrix)
    return dense - mean


def test_centered_times_matches_dense_sparse_input(rng):
    matrix = sp.random(50, 20, density=0.15, random_state=5, format="csr")
    mean = column_means(matrix)
    right = rng.normal(size=(20, 4))
    expected = _dense_centered(matrix, mean) @ right
    np.testing.assert_allclose(centered_times(matrix, mean, right), expected, atol=1e-12)


def test_centered_times_matches_dense_dense_input(rng):
    matrix = rng.normal(size=(30, 8))
    mean = column_means(matrix)
    right = rng.normal(size=(8, 3))
    expected = _dense_centered(matrix, mean) @ right
    np.testing.assert_allclose(centered_times(matrix, mean, right), expected, atol=1e-12)


def test_centered_transpose_times_matches_dense(rng):
    matrix = sp.random(40, 15, density=0.2, random_state=9, format="csr")
    mean = column_means(matrix)
    right = rng.normal(size=(40, 6))
    expected = _dense_centered(matrix, mean).T @ right
    np.testing.assert_allclose(
        centered_transpose_times(matrix, mean, right), expected, atol=1e-12
    )


def test_centered_gram_matches_dense(rng):
    matrix = sp.random(60, 12, density=0.3, random_state=2, format="csr")
    mean = column_means(matrix)
    centered = _dense_centered(matrix, mean)
    np.testing.assert_allclose(centered_gram(matrix, mean), centered.T @ centered, atol=1e-10)


def test_centered_gram_requires_true_mean(rng):
    # With an arbitrary (non-mean) vector the identity does not hold; the
    # function documents it needs the exact column mean.
    matrix = rng.normal(size=(10, 4))
    mean = column_means(matrix)
    np.testing.assert_allclose(
        centered_gram(matrix, mean),
        _dense_centered(matrix, mean).T @ _dense_centered(matrix, mean),
        atol=1e-10,
    )


def test_centered_row_sparse(rng):
    matrix = sp.random(5, 9, density=0.3, random_state=1, format="csr")
    mean = column_means(matrix)
    np.testing.assert_allclose(
        centered_row(matrix[2], mean), _dense_centered(matrix, mean)[2], atol=1e-12
    )


def test_shape_errors():
    matrix = np.ones((4, 3))
    with pytest.raises(ShapeError):
        centered_times(matrix, np.zeros(5), np.ones((3, 2)))
    with pytest.raises(ShapeError):
        centered_times(matrix, np.zeros(3), np.ones((5, 2)))
    with pytest.raises(ShapeError):
        centered_transpose_times(matrix, np.zeros(3), np.ones((9, 2)))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=12),
    d_cols=st.integers(min_value=1, max_value=10),
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_centered_times_identity(n, d_cols, k, seed):
    rng = np.random.default_rng(seed)
    matrix = sp.random(n, d_cols, density=0.4, random_state=seed % 2**31, format="csr")
    mean = rng.normal(size=d_cols)
    right = rng.normal(size=(d_cols, k))
    expected = (np.asarray(matrix.todense()) - mean) @ right
    np.testing.assert_allclose(centered_times(matrix, mean, right), expected, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=12),
    d_cols=st.integers(min_value=1, max_value=10),
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_centered_transpose_identity(n, d_cols, k, seed):
    rng = np.random.default_rng(seed)
    matrix = sp.random(n, d_cols, density=0.4, random_state=seed % 2**31, format="csr")
    mean = rng.normal(size=d_cols)
    right = rng.normal(size=(n, k))
    expected = (np.asarray(matrix.todense()) - mean).T @ right
    np.testing.assert_allclose(
        centered_transpose_times(matrix, mean, right), expected, atol=1e-9
    )
