"""Column statistics and row sampling."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.linalg import column_means, column_sums, sample_rows


def test_column_means_sparse():
    matrix = sp.csr_matrix(np.array([[1.0, 0.0], [3.0, 2.0]]))
    np.testing.assert_allclose(column_means(matrix), [2.0, 1.0])


def test_column_means_dense():
    matrix = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
    np.testing.assert_allclose(column_means(matrix), [3.0, 4.0])


def test_column_sums_matches_numpy():
    rng = np.random.default_rng(2)
    matrix = rng.normal(size=(12, 5))
    np.testing.assert_allclose(column_sums(matrix), matrix.sum(axis=0))


def test_column_means_empty_raises():
    with pytest.raises(ShapeError):
        column_means(np.empty((0, 3)))


def test_sample_rows_fraction_bounds():
    rng = np.random.default_rng(0)
    matrix = np.arange(20.0).reshape(10, 2)
    with pytest.raises(ShapeError):
        sample_rows(matrix, 0.0, rng)
    with pytest.raises(ShapeError):
        sample_rows(matrix, 1.5, rng)


def test_sample_rows_returns_subset_of_rows():
    rng = np.random.default_rng(3)
    matrix = np.arange(40.0).reshape(20, 2)
    sampled = sample_rows(matrix, 0.25, rng)
    assert sampled.shape == (5, 2)
    original_rows = {tuple(row) for row in matrix}
    assert all(tuple(row) in original_rows for row in sampled)


def test_sample_rows_full_fraction_is_everything():
    rng = np.random.default_rng(4)
    matrix = np.arange(12.0).reshape(6, 2)
    sampled = sample_rows(matrix, 1.0, rng)
    np.testing.assert_allclose(sampled, matrix)


def test_sample_rows_at_least_one():
    rng = np.random.default_rng(5)
    matrix = np.arange(8.0).reshape(4, 2)
    sampled = sample_rows(matrix, 0.01, rng)
    assert sampled.shape[0] == 1


def test_sample_rows_sparse_stays_sparse():
    rng = np.random.default_rng(6)
    matrix = sp.random(30, 6, density=0.3, random_state=1, format="csr")
    sampled = sample_rows(matrix, 0.5, rng)
    assert sp.issparse(sampled)
    assert sampled.shape == (15, 6)
