"""All three backends must produce identical sPCA results.

This is the central integration test: the paper's claim that sPCA's design
"is general and can be implemented on different platforms" and that the
optimizations "do not change any theoretical properties".
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backends import MapReduceBackend, SequentialBackend, SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext
from repro.metrics import subspace_angle_degrees


SMALL_CLUSTER = ClusterSpec(num_nodes=2, cores_per_node=2)


@pytest.fixture(scope="module")
def sparse_data():
    return sp.random(300, 40, density=0.15, random_state=17, format="csr")


@pytest.fixture(scope="module")
def dense_data():
    rng = np.random.default_rng(23)
    return rng.normal(size=(200, 4)) @ rng.normal(size=(4, 25)) + rng.normal(size=25)


def make_backend(kind, config):
    if kind == "sequential":
        return SequentialBackend(config)
    if kind == "mapreduce":
        return MapReduceBackend(config, MapReduceRuntime(cluster=SMALL_CLUSTER))
    return SparkBackend(config, SparkContext(cluster=SMALL_CLUSTER))


BASE = SPCAConfig(
    n_components=3, max_iterations=6, tolerance=0.0, seed=9,
    compute_error_every_iteration=False,
)


@pytest.mark.parametrize("kind", ["mapreduce", "spark"])
def test_backend_matches_sequential_sparse(kind, sparse_data):
    reference, _ = SPCA(BASE, SequentialBackend(BASE)).fit(sparse_data)
    model, _ = SPCA(BASE, make_backend(kind, BASE)).fit(sparse_data)
    np.testing.assert_allclose(model.components, reference.components, atol=1e-8)
    assert model.noise_variance == pytest.approx(reference.noise_variance, rel=1e-8)


@pytest.mark.parametrize("kind", ["mapreduce", "spark"])
def test_backend_matches_sequential_dense(kind, dense_data):
    reference, _ = SPCA(BASE, SequentialBackend(BASE)).fit(dense_data)
    model, _ = SPCA(BASE, make_backend(kind, BASE)).fit(dense_data)
    np.testing.assert_allclose(model.components, reference.components, atol=1e-8)


@pytest.mark.parametrize("kind", ["mapreduce", "spark"])
@pytest.mark.parametrize(
    "flags",
    [
        {"use_mean_propagation": False},
        {"use_efficient_frobenius": False},
        {"use_x_recomputation": False},
        {"use_job_consolidation": False},
    ],
)
def test_ablations_do_not_change_results(kind, flags, sparse_data):
    config = BASE.with_options(**flags)
    reference, _ = SPCA(BASE, make_backend(kind, BASE)).fit(sparse_data)
    ablated, _ = SPCA(config, make_backend(kind, config)).fit(sparse_data)
    np.testing.assert_allclose(
        ablated.components, reference.components, atol=1e-8,
        err_msg=f"{kind} ablation {flags} changed the result",
    )


@pytest.mark.parametrize("kind", ["mapreduce", "spark"])
def test_error_metric_agrees_with_sequential(kind, dense_data):
    config = BASE.with_options(compute_error_every_iteration=True)
    _, ref_history = SPCA(config, SequentialBackend(config)).fit(dense_data)
    _, history = SPCA(config, make_backend(kind, config)).fit(dense_data)
    ref_errors = [s.error for s in ref_history.iterations]
    errors = [s.error for s in history.iterations]
    np.testing.assert_allclose(errors, ref_errors, rtol=1e-6)


def test_mapreduce_backend_accumulates_metrics(sparse_data):
    backend = make_backend("mapreduce", BASE)
    SPCA(BASE, backend).fit(sparse_data)
    assert backend.simulated_seconds > 0
    jobs = backend.runtime.metrics.jobs
    names = {job.name for job in jobs}
    assert {"meanJob", "FnormJob", "YtXJob", "ss3Job"} <= names
    # One meanJob + FnormJob, then YtXJob + ss3Job per iteration.
    assert len([j for j in jobs if j.name == "YtXJob"]) == BASE.max_iterations


def test_spark_backend_accumulates_metrics(sparse_data):
    backend = make_backend("spark", BASE)
    SPCA(BASE, backend).fit(sparse_data)
    assert backend.simulated_seconds > 0
    assert backend.intermediate_bytes > 0


def test_spark_faster_than_mapreduce_in_sim(sparse_data):
    mr_backend = make_backend("mapreduce", BASE)
    spark_backend = make_backend("spark", BASE)
    SPCA(BASE, mr_backend).fit(sparse_data)
    SPCA(BASE, spark_backend).fit(sparse_data)
    assert spark_backend.simulated_seconds < mr_backend.simulated_seconds


def test_materialized_x_increases_intermediate_data(sparse_data):
    config = BASE.with_options(use_x_recomputation=False)
    optimized = make_backend("mapreduce", BASE)
    ablated = make_backend("mapreduce", config)
    SPCA(BASE, optimized).fit(sparse_data)
    SPCA(config, ablated).fit(sparse_data)
    assert ablated.intermediate_bytes > optimized.intermediate_bytes


def test_spark_sparse_accumulator_reduces_bytes():
    # With mean propagation the YtX partials travel sparse; without, dense.
    # The saving appears when each block touches few of the D columns, i.e.
    # in the high-dimensional sparse regime the paper targets (z << D).
    data = sp.random(400, 1200, density=0.002, random_state=29, format="csr")
    config = BASE.with_options(n_components=2, max_iterations=2)
    config_dense = config.with_options(use_mean_propagation=False)
    opt = make_backend("spark", config)
    unopt = make_backend("spark", config_dense)
    SPCA(config, opt).fit(data)
    SPCA(config_dense, unopt).fit(data)
    assert opt.intermediate_bytes < unopt.intermediate_bytes


def test_backends_recover_subspace(sparse_data):
    dense = np.asarray(sparse_data.todense())
    centered = dense - dense.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    exact = vt[:3].T
    config = BASE.with_options(max_iterations=40)
    for kind in ("mapreduce", "spark"):
        model, _ = SPCA(config, make_backend(kind, config)).fit(sparse_data)
        assert subspace_angle_degrees(model.basis, exact) < 10.0


def test_backend_failure_injection_spark(sparse_data):
    flaky = SparkBackend(BASE, SparkContext(cluster=SMALL_CLUSTER, failure_rate=0.1, seed=3))
    model, _ = SPCA(BASE, flaky).fit(sparse_data)
    reference, _ = SPCA(BASE, SequentialBackend(BASE)).fit(sparse_data)
    np.testing.assert_allclose(model.components, reference.components, atol=1e-8)


def test_backend_failure_injection_mapreduce(sparse_data):
    flaky = MapReduceBackend(
        BASE, MapReduceRuntime(cluster=SMALL_CLUSTER, failure_rate=0.1, seed=3)
    )
    model, _ = SPCA(BASE, flaky).fit(sparse_data)
    reference, _ = SPCA(BASE, SequentialBackend(BASE)).fit(sparse_data)
    np.testing.assert_allclose(model.components, reference.components, atol=1e-8)


def test_sequential_backend_tracks_materialized_latent_bytes(sparse_data):
    config = BASE.with_options(use_x_recomputation=False)
    backend = SequentialBackend(config)
    SPCA(config, backend).fit(sparse_data)
    # Each iteration materialized one full X (N x d doubles).
    expected_per_iteration = sparse_data.shape[0] * BASE.n_components * 8
    assert backend.intermediate_bytes >= expected_per_iteration * BASE.max_iterations
    backend.reset_metrics()
    assert backend.intermediate_bytes == 0


def test_backends_reset_metrics(sparse_data):
    for kind in ("mapreduce", "spark"):
        backend = make_backend(kind, BASE)
        SPCA(BASE, backend).fit(sparse_data)
        assert backend.simulated_seconds > 0
        backend.reset_metrics()
        assert backend.simulated_seconds == 0
        assert backend.intermediate_bytes == 0
