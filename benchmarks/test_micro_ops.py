"""Micro-benchmarks of the Section 3 primitives (real pytest-benchmark timings).

These complement the simulated-time tables with honest single-process
timings of the optimized vs unoptimized kernels, on a Tweets-like block.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data.generators import bag_of_words
from repro.linalg import (
    centered_times,
    column_means,
    frobenius_centered_dense,
    frobenius_simple,
    frobenius_sparse,
)
from repro.linalg.multiply import xcy_associative, xcy_block


@pytest.fixture(scope="module")
def block():
    return bag_of_words(4_000, 3_000, words_per_doc=8.0, seed=77)


@pytest.fixture(scope="module")
def mean(block):
    return column_means(block)


@pytest.fixture(scope="module")
def small(block):
    rng = np.random.default_rng(0)
    return rng.normal(size=(block.shape[1], 10))


@pytest.mark.benchmark(group="frobenius")
def test_frobenius_sparse_alg3(benchmark, block, mean):
    result = benchmark(frobenius_sparse, block, mean)
    assert result > 0


@pytest.mark.benchmark(group="frobenius")
def test_frobenius_simple_alg2(benchmark, block, mean):
    result = benchmark(frobenius_simple, block, mean)
    assert result > 0


@pytest.mark.benchmark(group="frobenius")
def test_frobenius_dense_reference(benchmark, block, mean):
    result = benchmark(frobenius_centered_dense, block, mean)
    assert result > 0


@pytest.mark.benchmark(group="mean-propagation")
def test_centered_times_propagated(benchmark, block, mean, small):
    result = benchmark(centered_times, block, mean, small)
    assert result.shape == (block.shape[0], 10)


@pytest.mark.benchmark(group="mean-propagation")
def test_centered_times_densified(benchmark, block, mean, small):
    def densify_and_multiply():
        return (np.asarray(block.todense()) - mean) @ small

    result = benchmark(densify_and_multiply)
    assert result.shape == (block.shape[0], 10)


@pytest.mark.benchmark(group="ss3-associativity")
def test_xcy_associative_order(benchmark, block, small):
    rng = np.random.default_rng(1)
    x_row = rng.normal(size=10)
    y_row = block[0]
    result = benchmark(xcy_associative, x_row, small, y_row)
    assert np.isfinite(result)


@pytest.mark.benchmark(group="ss3-associativity")
def test_xcy_naive_order(benchmark, block, small):
    rng = np.random.default_rng(1)
    x_row = rng.normal(size=10)
    y_dense = np.asarray(block[0].todense()).ravel()

    def naive():
        return float((x_row @ small.T) @ y_dense)

    result = benchmark(naive)
    assert np.isfinite(result)


@pytest.mark.benchmark(group="ss3-associativity")
def test_xcy_block_vectorized(benchmark, block, small):
    rng = np.random.default_rng(2)
    latent = rng.normal(size=(block.shape[0], 10))
    result = benchmark(xcy_block, latent, small, block)
    assert np.isfinite(result)
