"""Unit tests for the Spark memory models."""

import pytest

from repro.engine.spark.memory import BlockManager, DriverMemoryMonitor
from repro.errors import DriverOutOfMemoryError, ShapeError


class TestDriverMemoryMonitor:
    def test_allocate_and_release(self):
        driver = DriverMemoryMonitor(1000)
        driver.allocate(400)
        driver.allocate(300)
        assert driver.used_bytes == 700
        driver.release(300)
        assert driver.used_bytes == 400
        assert driver.peak_bytes == 700

    def test_over_limit_raises_with_details(self):
        driver = DriverMemoryMonitor(100)
        with pytest.raises(DriverOutOfMemoryError) as info:
            driver.allocate(200, what="covariance")
        assert info.value.requested_bytes == 200
        assert info.value.limit_bytes == 100
        assert "covariance" in str(info.value)

    def test_failed_allocation_leaves_state_unchanged(self):
        driver = DriverMemoryMonitor(100)
        driver.allocate(50)
        with pytest.raises(DriverOutOfMemoryError):
            driver.allocate(80)
        assert driver.used_bytes == 50

    def test_transient_counts_towards_peak_only(self):
        driver = DriverMemoryMonitor(1000)
        driver.transient(800)
        assert driver.used_bytes == 0
        assert driver.peak_bytes == 800

    def test_release_never_goes_negative(self):
        driver = DriverMemoryMonitor(100)
        driver.release(50)
        assert driver.used_bytes == 0

    def test_reset(self):
        driver = DriverMemoryMonitor(100)
        driver.allocate(60)
        driver.reset()
        assert driver.used_bytes == 0
        assert driver.peak_bytes == 0

    def test_invalid_limit(self):
        with pytest.raises(ShapeError):
            DriverMemoryMonitor(0)

    def test_negative_allocation_rejected(self):
        # A negative "allocation" would silently lower used_bytes and mask
        # later over-limit conditions; frees must go through release().
        driver = DriverMemoryMonitor(100)
        driver.allocate(60)
        with pytest.raises(ShapeError):
            driver.allocate(-10, what="refund")
        assert driver.used_bytes == 60


class TestBlockManager:
    def test_put_get_in_memory(self):
        manager = BlockManager(1000)
        manager.put(1, 0, ["a"], 100)
        block = manager.get(1, 0)
        assert block.data == ["a"]
        assert not block.on_disk
        assert manager.memory_bytes == 100
        assert manager.disk_bytes == 0

    def test_overflow_goes_to_disk(self):
        manager = BlockManager(150)
        manager.put(1, 0, ["a"], 100)
        manager.put(1, 1, ["b"], 100)  # would exceed 150
        assert not manager.get(1, 0).on_disk
        assert manager.get(1, 1).on_disk
        assert manager.disk_bytes == 100

    def test_missing_block_is_none(self):
        manager = BlockManager(100)
        assert manager.get(9, 9) is None

    def test_evict_frees_both_tiers(self):
        manager = BlockManager(150)
        manager.put(1, 0, ["a"], 100)
        manager.put(1, 1, ["b"], 100)
        manager.put(2, 0, ["c"], 10)
        manager.evict(1)
        assert manager.get(1, 0) is None
        assert manager.get(1, 1) is None
        assert manager.get(2, 0) is not None
        assert manager.cached_bytes == 10

    def test_invalid_limit(self):
        with pytest.raises(ShapeError):
            BlockManager(-5)

    def test_put_twice_replaces_accounting(self):
        manager = BlockManager(1000)
        manager.put(1, 0, ["a"], 100)
        manager.put(1, 0, ["a2"], 120)
        assert manager.get(1, 0).data == ["a2"]
        assert manager.memory_bytes == 120
        assert manager.cached_bytes == 120

    def test_put_twice_releases_disk_tier(self):
        manager = BlockManager(150)
        manager.put(1, 0, ["a"], 100)
        manager.put(1, 1, ["b"], 100)  # spills to disk
        assert manager.get(1, 1).on_disk
        # Re-putting the spilled block must drop the old disk charge; with
        # memory still holding 100 of 150, the new 40-byte block now fits.
        manager.put(1, 1, ["b2"], 40)
        assert manager.disk_bytes == 0
        assert manager.memory_bytes == 140
        assert not manager.get(1, 1).on_disk

    def test_repeated_put_does_not_leak(self):
        manager = BlockManager(500)
        for round_ in range(10):
            manager.put(3, 0, [round_], 50)
        assert manager.memory_bytes == 50
        assert manager.disk_bytes == 0
