"""The Chu-et-al covariance-on-MapReduce baseline, and the phase breakdown."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import communication_complexity, time_complexity
from repro.analysis.cost_model import METHODS
from repro.analysis.phases import breakdown_totals, phase_breakdown
from repro.baselines.covariance_mapreduce import CovariancePCAMapReduce
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.errors import DriverOutOfMemoryError, ShapeError
from repro.metrics import subspace_angle_degrees

SMALL_CLUSTER = ClusterSpec(num_nodes=2, cores_per_node=2)


class TestCovariancePCAMapReduce:
    def test_recovers_exact_subspace(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(200, 3)) @ rng.normal(size=(3, 15)) + rng.normal(size=15)
        result = CovariancePCAMapReduce(
            3, MapReduceRuntime(cluster=SMALL_CLUSTER)
        ).fit(data)
        centered = data - data.mean(axis=0)
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        assert subspace_angle_degrees(result.model.components, vt[:3].T) < 0.1

    def test_sparse_input(self):
        matrix = sp.random(150, 20, density=0.3, random_state=2, format="csr")
        result = CovariancePCAMapReduce(
            2, MapReduceRuntime(cluster=SMALL_CLUSTER)
        ).fit(matrix)
        assert result.model.components.shape == (20, 2)

    def test_matches_spark_side_analog(self):
        from repro.baselines import CovariancePCA
        from repro.engine.spark.context import SparkContext

        rng = np.random.default_rng(3)
        data = rng.normal(size=(120, 12))
        mr_result = CovariancePCAMapReduce(
            3, MapReduceRuntime(cluster=SMALL_CLUSTER)
        ).fit(data)
        spark_result = CovariancePCA(3, SparkContext(cluster=SMALL_CLUSTER)).fit(data)
        assert (
            subspace_angle_degrees(
                mr_result.model.components, spark_result.model.components
            )
            < 1e-3
        )

    def test_fails_fast_for_wide_matrices(self):
        data = sp.random(50, 800, density=0.01, random_state=4, format="csr")
        algorithm = CovariancePCAMapReduce(
            2,
            MapReduceRuntime(cluster=SMALL_CLUSTER),
            driver_memory_bytes=1024 * 1024,  # 1 MB < 800^2 doubles
        )
        with pytest.raises(DriverOutOfMemoryError):
            algorithm.fit(data)
        # Fails before running any job.
        assert not algorithm.runtime.metrics.jobs

    def test_single_distributed_pass(self):
        rng = np.random.default_rng(5)
        data = rng.normal(size=(80, 10))
        runtime = MapReduceRuntime(cluster=SMALL_CLUSTER)
        CovariancePCAMapReduce(2, runtime).fit(data)
        assert len(runtime.metrics.by_name("covarianceJob")) == 1

    def test_validation(self):
        with pytest.raises(ShapeError):
            CovariancePCAMapReduce(0)
        with pytest.raises(ShapeError):
            CovariancePCAMapReduce(50, MapReduceRuntime(cluster=SMALL_CLUSTER)).fit(
                np.ones((5, 5))
            )


class TestPhaseBreakdown:
    @pytest.mark.parametrize("method", METHODS)
    def test_totals_match_table1_orders(self, method):
        n, d_cols, d = 100_000, 5_000, 50
        total_ops, max_comm = breakdown_totals(method, n, d_cols, d)
        # Within a small constant factor of the Table 1 dominant terms.
        assert total_ops >= time_complexity(method, n, d_cols, d)
        assert total_ops <= 10 * time_complexity(method, n, d_cols, d)
        assert max_comm <= 10 * communication_complexity(method, n, d_cols, d)
        assert max_comm >= 0.1 * communication_complexity(method, n, d_cols, d)

    @pytest.mark.parametrize("method", METHODS)
    def test_phases_are_documented(self, method):
        for phase in phase_breakdown(method, 1000, 100, 10):
            assert phase.name
            assert phase.description
            assert phase.time_ops > 0

    def test_ppca_communication_is_d_times_d(self):
        phases = {p.name: p for p in phase_breakdown("ppca", 10**6, 10**4, 50)}
        assert phases["ytx-xtx"].communication_elements == 10**4 * 50

    def test_validation(self):
        with pytest.raises(ShapeError):
            phase_breakdown("ppca", 0, 10, 2)
        with pytest.raises(ShapeError):
            phase_breakdown("nonsense", 10, 10, 2)
