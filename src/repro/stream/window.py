"""Windowing: re-slicing arrival chunks into model-update batches.

The windower is the boundary that makes streaming results reproducible:
however the source batches its rows, the sequence of emitted windows is a
pure function of the row order and the :class:`WindowSpec`.  Each window is
materialized by stacking the buffered pieces (the same
:func:`~repro.jobs.kernels.stack_blocks` the batch pipeline uses), so a
window assembled from many small arrivals holds bit-identical values to one
assembled from a single large arrival -- which is what lets the equivalence
suite demand bitwise-equal models across arrival chunkings.

Two shapes are supported:

- **tumbling** (``step`` omitted or equal to ``size``): consecutive,
  disjoint windows; a final partial window can be flushed at end-of-stream.
- **sliding** (``step < size``): overlapping windows advancing by ``step``
  rows; each row contributes to ``size / step`` updates, weighting recent
  rows more heavily.  A partial tail is dropped (its rows were already
  partially represented by the preceding overlapping windows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.jobs.kernels import stack_blocks
from repro.linalg.blocks import Matrix


@dataclass(frozen=True)
class WindowSpec:
    """How many rows per model update, and how far the window advances.

    Attributes:
        size: rows per window (the mini-batch size of the sEM update).
        step: rows the window advances between updates; ``None`` means
            tumbling (``step == size``).  Must satisfy ``1 <= step <= size``.
    """

    size: int
    step: int | None = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ShapeError(f"window size must be >= 1, got {self.size}")
        if self.step is not None and not 1 <= self.step <= self.size:
            raise ShapeError(
                f"window step must be in [1, {self.size}], got {self.step}"
            )

    @property
    def stride(self) -> int:
        return self.size if self.step is None else self.step

    @property
    def tumbling(self) -> bool:
        return self.stride == self.size


@dataclass(frozen=True)
class Window:
    """One materialized window of rows.

    Attributes:
        index: 0-based window sequence number.
        start_row: absolute row index of the window's first row.
        rows: the ``(n, D)`` window content, dense or CSR.
        complete: False only for a flushed partial tail (tumbling streams).
    """

    index: int
    start_row: int
    rows: Matrix
    complete: bool

    @property
    def n_rows(self) -> int:
        return self.rows.shape[0]

    @property
    def end_row(self) -> int:
        return self.start_row + self.n_rows


class Windower:
    """Buffers arrival chunks and emits windows per a :class:`WindowSpec`.

    ``start_row`` / ``start_index`` seed the absolute position when resuming
    a checkpointed stream: a windower restarted at the last checkpoint's
    consumed-row boundary emits exactly the windows the uninterrupted
    stream would have emitted next.
    """

    def __init__(
        self,
        spec: WindowSpec,
        n_cols: int,
        *,
        start_row: int = 0,
        start_index: int = 0,
    ):
        self.spec = spec
        self.n_cols = n_cols
        self._pieces: list[Matrix] = []
        self._buffered = 0
        self._next_index = start_index
        self._consumed = start_row

    @property
    def buffered_rows(self) -> int:
        """Rows read from the source but not yet emitted in a window --
        the backpressure queue depth."""
        return self._buffered

    @property
    def consumed_rows(self) -> int:
        """Absolute row index of the buffer head: every row before it has
        been consumed by an emitted window.  This is the replay point a
        checkpoint records."""
        return self._consumed

    @property
    def next_index(self) -> int:
        return self._next_index

    def push(self, chunk: Matrix) -> list[Window]:
        """Buffer *chunk*; return every window it completes (often none)."""
        if chunk.shape[1] != self.n_cols:
            raise ShapeError(
                f"chunk has {chunk.shape[1]} columns, expected {self.n_cols}"
            )
        if chunk.shape[0]:
            self._pieces.append(chunk)
            self._buffered += chunk.shape[0]
        emitted = []
        while self._buffered >= self.spec.size:
            emitted.append(self._emit(self.spec.size, complete=True))
        return emitted

    def flush(self) -> Window | None:
        """End-of-stream: emit the buffered partial tail, if the spec keeps
        it (tumbling only; sliding tails are dropped)."""
        if self._buffered == 0 or not self.spec.tumbling:
            self._pieces.clear()
            self._buffered = 0
            return None
        return self._emit(self._buffered, complete=False)

    def _emit(self, n_rows: int, complete: bool) -> Window:
        window = Window(
            index=self._next_index,
            start_row=self._consumed,
            rows=self._assemble(n_rows),
            complete=complete,
        )
        advance = min(self.spec.stride, n_rows) if complete else n_rows
        self._drop(advance)
        self._consumed += advance
        self._next_index += 1
        return window

    def _assemble(self, n_rows: int) -> Matrix:
        parts = []
        need = n_rows
        for piece in self._pieces:
            take = min(need, piece.shape[0])
            parts.append(piece[:take] if take < piece.shape[0] else piece)
            need -= take
            if need == 0:
                break
        return stack_blocks(parts)

    def _drop(self, n_rows: int) -> None:
        while n_rows > 0:
            head = self._pieces[0]
            if head.shape[0] <= n_rows:
                n_rows -= head.shape[0]
                self._buffered -= head.shape[0]
                self._pieces.pop(0)
            else:
                self._pieces[0] = head[n_rows:]
                self._buffered -= n_rows
                n_rows = 0


def reference_windows(
    matrix: Matrix, spec: WindowSpec, *, flush: bool = True
) -> list[Window]:
    """The window sequence of a finite stream, computed directly.

    This is the sequential oracle the equivalence suite compares against: a
    plain slicing of the materialized matrix, no buffering involved.
    """
    windows = []
    n_rows = matrix.shape[0]
    index = 0
    start = 0
    while start + spec.size <= n_rows:
        windows.append(
            Window(
                index=index,
                start_row=start,
                rows=matrix[start : start + spec.size],
                complete=True,
            )
        )
        index += 1
        start += spec.stride
    if flush and spec.tumbling and start < n_rows:
        windows.append(
            Window(index=index, start_row=start, rows=matrix[start:], complete=False)
        )
    return windows


def window_values_equal(a: Matrix, b: Matrix) -> bool:
    """Bitwise equality of two windows' row values (dense or CSR)."""
    if a.shape != b.shape:
        return False
    if sp.issparse(a) != sp.issparse(b):
        return False
    if sp.issparse(a):
        return bool((a != b).nnz == 0)
    return bool(np.array_equal(np.asarray(a), np.asarray(b)))
