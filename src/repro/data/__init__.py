"""Synthetic analogs of the paper's four evaluation datasets.

The originals (1.26B tweets, 8.2M biomedical documents, 353 NMR spectra,
160M SIFT vectors) are proprietary or too large for a single machine; the
generators here produce matrices with the same *statistical shape* --
sparsity pattern, value types, aspect ratio -- at a configurable scale, so
every scaling claim in the evaluation can be reproduced.  DESIGN.md
documents the substitution.
"""

from repro.data.generators import (
    bag_of_words,
    lowrank_dense,
    nmr_spectra,
    sift_features,
)
from repro.data.paper import (
    PAPER_DATASETS,
    DatasetSpec,
    biotext_series,
    diabetes_series,
    images_series,
    make_dataset,
    tweets_series,
)

__all__ = [
    "PAPER_DATASETS",
    "DatasetSpec",
    "bag_of_words",
    "biotext_series",
    "diabetes_series",
    "images_series",
    "lowrank_dense",
    "make_dataset",
    "nmr_spectra",
    "sift_features",
    "tweets_series",
]
