"""Streaming PCA: windowed mini-batch stochastic EM over row sources.

The paper's central design point -- per-iteration state is only the small
``(C, ss)`` pair, independent of N -- makes PCA over an unbounded row
stream a natural workload: each window of rows is reduced engine-side to
d-sized sufficient statistics and blended driver-side, so the stream can
run forever in constant memory.  This package provides:

- :mod:`~repro.stream.source` -- row sources (materialized matrices,
  pre-chunked batches, an unbounded synthetic stream with plantable drift);
- :mod:`~repro.stream.window` -- tumbling/sliding windowing, arrival-
  chunking independent;
- :mod:`~repro.stream.engines` -- the per-window statistics job on the
  MapReduce runtime and the Spark simulator (plus a sequential reference);
- :mod:`~repro.stream.drift` -- passive subspace-angle drift detection;
- :mod:`~repro.stream.checkpoint` -- stream state in the EM checkpoint
  format, for bit-identical resume;
- :mod:`~repro.stream.runner` -- the driver loop tying it together, with
  tracing, metrics, backpressure gauges, and periodic snapshots.
"""

from repro.stream.checkpoint import (
    STREAM_CHECKPOINT_KIND,
    StreamSnapshot,
    pack_stream_checkpoint,
    unpack_stream_checkpoint,
)
from repro.stream.drift import DriftDetector, DriftEvent
from repro.stream.engines import (
    ENGINE_NAMES,
    STREAM_STATS_JOB,
    STREAM_WINDOW_JOB,
    MapReduceWindowEngine,
    SequentialWindowEngine,
    SparkWindowEngine,
    WindowEngine,
    make_window_engine,
)
from repro.stream.runner import (
    StreamConfig,
    StreamingPCA,
    StreamResult,
    WindowRecord,
)
from repro.stream.source import (
    DriftSpec,
    IterableSource,
    MatrixSource,
    RowSource,
    SyntheticSource,
    as_source,
)
from repro.stream.window import Window, Windower, WindowSpec, reference_windows

__all__ = [
    "ENGINE_NAMES",
    "STREAM_CHECKPOINT_KIND",
    "STREAM_STATS_JOB",
    "STREAM_WINDOW_JOB",
    "DriftDetector",
    "DriftEvent",
    "DriftSpec",
    "IterableSource",
    "MapReduceWindowEngine",
    "MatrixSource",
    "RowSource",
    "SequentialWindowEngine",
    "SparkWindowEngine",
    "StreamConfig",
    "StreamResult",
    "StreamSnapshot",
    "StreamingPCA",
    "SyntheticSource",
    "Window",
    "WindowEngine",
    "WindowRecord",
    "WindowSpec",
    "Windower",
    "as_source",
    "make_window_engine",
    "pack_stream_checkpoint",
    "reference_windows",
    "unpack_stream_checkpoint",
]
