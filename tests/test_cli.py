"""The repro-spca command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.persistence import load_model
from repro.data.io import load_matrix


@pytest.fixture
def matrix_path(tmp_path):
    path = tmp_path / "data.npz"
    code = main(["generate", "tweets", "--rows", "300", "--cols", "80",
                 "--seed", "3", "--out", str(path)])
    assert code == 0
    return path


class TestGenerate:
    def test_generates_all_datasets(self, tmp_path, capsys):
        for dataset in ("tweets", "biotext", "diabetes", "images"):
            out = tmp_path / f"{dataset}.npz"
            assert main(["generate", dataset, "--rows", "50", "--cols", "60",
                         "--out", str(out)]) == 0
            matrix = load_matrix(out)
            assert matrix.shape == (50, 60)
        output = capsys.readouterr().out
        assert "images" in output

    def test_sparse_density_reported(self, matrix_path, capsys):
        pass  # generation already checked via fixture


class TestFit:
    def test_fit_and_save(self, matrix_path, tmp_path, capsys):
        model_path = tmp_path / "model.npz"
        code = main(["fit", str(matrix_path), "--components", "4",
                     "--max-iterations", "5", "--out", str(model_path)])
        assert code == 0
        model = load_model(model_path)
        assert model.n_components == 4
        assert "iterations" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["mapreduce", "spark"])
    def test_fit_on_engine_backends(self, matrix_path, backend, capsys):
        code = main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "3", "--backend", backend])
        assert code == 0
        assert "simulated cluster time" in capsys.readouterr().out

    def test_fit_with_smart_init(self, matrix_path, capsys):
        code = main(["fit", str(matrix_path), "--components", "3",
                     "--max-iterations", "3", "--smart-init"])
        assert code == 0

    def test_missing_input_is_a_clean_error(self, tmp_path, capsys):
        code = main(["fit", str(tmp_path / "nope.npz"), "--components", "2"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestTransformEvaluateInfo:
    @pytest.fixture
    def model_path(self, matrix_path, tmp_path):
        path = tmp_path / "model.npz"
        main(["fit", str(matrix_path), "--components", "4",
              "--max-iterations", "5", "--out", str(path)])
        return path

    def test_transform(self, model_path, matrix_path, tmp_path, capsys):
        out = tmp_path / "latent.npz"
        assert main(["transform", str(model_path), str(matrix_path),
                     "--out", str(out)]) == 0
        latent = load_matrix(out)
        assert latent.shape == (300, 4)

    def test_evaluate(self, model_path, matrix_path, capsys):
        assert main(["evaluate", str(model_path), str(matrix_path)]) == 0
        output = capsys.readouterr().out
        assert "accuracy" in output

    def test_evaluate_with_sampling(self, model_path, matrix_path):
        assert main(["evaluate", str(model_path), str(matrix_path),
                     "--sample-fraction", "0.5"]) == 0

    def test_info_model(self, model_path, capsys):
        assert main(["info", str(model_path)]) == 0
        assert "PCA model" in capsys.readouterr().out

    def test_info_matrix(self, matrix_path, capsys):
        assert main(["info", str(matrix_path)]) == 0
        assert "matrix" in capsys.readouterr().out

    def test_info_unknown_archive(self, tmp_path, capsys):
        bogus = tmp_path / "x.npz"
        np.savez(bogus, stuff=np.ones(2))
        assert main(["info", str(bogus)]) == 1


class TestSelect:
    def test_select_reports_bic_table(self, matrix_path, capsys):
        code = main(["select", str(matrix_path), "--candidates", "1,2,4",
                     "--max-iterations", "20"])
        assert code == 0
        output = capsys.readouterr().out
        assert "BIC" in output
        assert "chosen d =" in output

    def test_select_malformed_candidates(self, matrix_path, capsys):
        code = main(["select", str(matrix_path), "--candidates", "a,b"])
        assert code == 2

    def test_select_invalid_candidates(self, matrix_path, capsys):
        code = main(["select", str(matrix_path), "--candidates", "0,2"])
        assert code == 2


class TestBench:
    def test_bench_prints_comparison(self, matrix_path, capsys):
        code = main(["bench", str(matrix_path), "--components", "3"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("sPCA-Spark", "MLlib-PCA", "sPCA-MapReduce", "Mahout-PCA"):
            assert name in output
