"""The MapReduce job runtime: split -> map -> combine -> shuffle -> reduce.

Execution is sequential inside one Python process, but the runtime measures
the compute time of every task and reconstructs the cluster timeline with
the cost model: task times are scheduled onto the cluster's cores, map
output is spilled to local disk and fetched over the network (the disk-based
platform's signature), and the per-job fixed overhead models Hadoop job
initialization.  All byte counts are real, measured from the records that
actually flowed.
"""

from __future__ import annotations

import copy
import time
import zlib
from collections import defaultdict
from typing import Any, Sequence

import numpy as np

from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce.api import MapReduceJob, Mapper, Reducer, TaskContext
from repro.engine.mapreduce.hdfs import InMemoryHDFS
from repro.engine.metrics import EngineMetrics, JobStats
from repro.engine.serde import sizeof_pairs
from repro.engine.simtime import (
    HADOOP_LIKE_COSTS,
    CostModel,
    apply_speculative_execution,
    schedule_makespan,
)
from repro.errors import InvalidPlanError, JobFailedError

Pair = tuple[Any, Any]


def _partition_of(key: Any, num_partitions: int) -> int:
    """Deterministic key partitioner (Python's hash() is salted per run)."""
    return zlib.crc32(repr(key).encode()) % num_partitions


def _instantiate(template):
    """Fresh per-task instance: classes are constructed, instances deep-copied."""
    if isinstance(template, type):
        return template()
    return copy.deepcopy(template)


class MapReduceRuntime:
    """Executes :class:`MapReduceJob` instances over a simulated cluster.

    Args:
        cluster: hardware description; its core count bounds task parallelism.
        cost_model: converts measured work into simulated seconds.
        hdfs: the simulated distributed filesystem (a fresh one by default).
        failure_rate: probability that any individual task attempt fails and
            is retried (fault-tolerance testing).
        max_task_attempts: attempts before the whole job is declared failed,
            matching Hadoop's ``mapreduce.map.maxattempts`` default of 4.
        seed: seed for failure injection.
    """

    def __init__(
        self,
        cluster: ClusterSpec | None = None,
        cost_model: CostModel = HADOOP_LIKE_COSTS,
        hdfs: InMemoryHDFS | None = None,
        failure_rate: float = 0.0,
        max_task_attempts: int = 4,
        seed: int = 0,
    ):
        if not 0.0 <= failure_rate < 1.0:
            raise InvalidPlanError(f"failure_rate must be in [0, 1), got {failure_rate}")
        self.cluster = cluster or ClusterSpec()
        self.cost_model = cost_model
        self.hdfs = hdfs or InMemoryHDFS()
        self.failure_rate = failure_rate
        self.max_task_attempts = max_task_attempts
        self.metrics = EngineMetrics()
        self._rng = np.random.default_rng(seed)
        self._current_stats: JobStats | None = None

    # -- public API ------------------------------------------------------

    def run(
        self, job: MapReduceJob, input_data: str | Sequence[Sequence[Pair]]
    ) -> list[Pair]:
        """Run one job; returns its output records and records JobStats.

        Args:
            job: the job description.
            input_data: either an HDFS path (the file is read and split one
                split per core) or an explicit list of splits, each a list of
                (key, value) records.
        """
        started = time.perf_counter()
        stats = JobStats(
            name=job.name, output_is_intermediate=job.output_is_intermediate
        )
        splits = self._resolve_splits(input_data, stats)
        stats.n_map_tasks = len(splits)

        self._current_stats = stats
        map_outputs, map_times = self._map_phase(job, splits, stats)
        output, reduce_times = self._reduce_phase(job, map_outputs, stats)
        self._current_stats = None

        if job.output_path is not None:
            stats.output_bytes = self.hdfs.write(job.output_path, output)
            stats.hdfs_write_bytes += stats.output_bytes
        else:
            stats.output_bytes = sizeof_pairs(output)

        stats.wall_seconds = time.perf_counter() - started
        stats.sim_seconds = self._simulate_timeline(stats, map_times, reduce_times)
        self.metrics.record(stats)
        return output

    # -- phases ----------------------------------------------------------

    def _resolve_splits(self, input_data, stats: JobStats) -> list[list[Pair]]:
        if isinstance(input_data, str):
            records = self.hdfs.read(input_data)
            stats.hdfs_read_bytes += self.hdfs.size(input_data)
            num_splits = max(1, min(self.cluster.total_cores, len(records)))
            boundaries = np.linspace(0, len(records), num_splits + 1, dtype=int)
            return [
                records[lo:hi] for lo, hi in zip(boundaries[:-1], boundaries[1:]) if hi > lo
            ]
        splits = [list(split) for split in input_data]
        if not splits:
            raise InvalidPlanError("job has no input splits")
        # MapReduce reads its input from the distributed filesystem on every
        # job -- this re-read is the disk-based platform's defining cost.
        stats.hdfs_read_bytes += sum(sizeof_pairs(split) for split in splits)
        return splits

    def _map_phase(self, job, splits, stats) -> tuple[list[list[Pair]], list[float]]:
        map_outputs = []
        map_times = []
        for task_id, split in enumerate(splits):
            pairs, seconds = self._attempt_task(
                stats, lambda: self._run_map_task(job, split, task_id)
            )
            map_times.append(seconds)
            map_outputs.append(pairs)
        stats.map_output_bytes = sum(sizeof_pairs(out) for out in map_outputs)
        if job.combiner is not None:
            combined = []
            for task_id, pairs in enumerate(map_outputs):
                out, seconds = self._attempt_task(
                    stats,
                    lambda: self._run_reduce_like(job.combiner, job, pairs, task_id),
                )
                map_times[min(task_id, len(map_times) - 1)] += seconds
                combined.append(out)
            map_outputs = combined
        return map_outputs, map_times

    def _reduce_phase(self, job, map_outputs, stats) -> tuple[list[Pair], list[float]]:
        all_pairs = [pair for output in map_outputs for pair in output]
        if job.reducer is None:
            return all_pairs, []
        stats.shuffle_bytes = sizeof_pairs(all_pairs)
        num_reducers = max(1, job.num_reducers)
        stats.n_reduce_tasks = num_reducers
        partitions: list[list[Pair]] = [[] for _ in range(num_reducers)]
        for key, value in all_pairs:
            partitions[_partition_of(key, num_reducers)].append((key, value))
        output: list[Pair] = []
        reduce_times: list[float] = []
        for task_id, partition in enumerate(partitions):
            pairs, seconds = self._attempt_task(
                stats, lambda: self._run_reduce_like(job.reducer, job, partition, task_id)
            )
            reduce_times.append(seconds)
            output.extend(pairs)
        return output, reduce_times

    # -- task execution --------------------------------------------------

    def _attempt_task(self, stats: JobStats, thunk) -> tuple[list[Pair], float]:
        total_seconds = 0.0
        for attempt in range(1, self.max_task_attempts + 1):
            started = time.perf_counter()
            result = thunk()
            elapsed = time.perf_counter() - started
            total_seconds += elapsed
            if self._rng.random() >= self.failure_rate:
                return result, total_seconds
            stats.task_retries += 1
        raise JobFailedError(
            f"job {stats.name!r}: task failed {self.max_task_attempts} times"
        )

    def _run_map_task(self, job: MapReduceJob, split, task_id: int) -> list[Pair]:
        mapper: Mapper = _instantiate(job.mapper)
        ctx = TaskContext(job.name, task_id, dict(job.config))
        mapper.setup(ctx)
        output: list[Pair] = []
        for key, value in split:
            output.extend(mapper.map(key, value, ctx))
        output.extend(mapper.cleanup(ctx))
        self._merge_counters(ctx)
        return output

    def _run_reduce_like(self, template, job, pairs, task_id: int) -> list[Pair]:
        reducer: Reducer = _instantiate(template)
        ctx = TaskContext(job.name, task_id, dict(job.config))
        reducer.setup(ctx)
        groups: dict[Any, list[Any]] = defaultdict(list)
        for key, value in pairs:
            groups[key].append(value)
        output: list[Pair] = []
        for key in sorted(groups, key=repr):
            output.extend(reducer.reduce(key, groups[key], ctx))
        output.extend(reducer.cleanup(ctx))
        self._merge_counters(ctx)
        return output

    def _merge_counters(self, ctx: TaskContext) -> None:
        if self._current_stats is not None:
            for counter, amount in ctx.counters.items():
                self._current_stats.counters[counter] = (
                    self._current_stats.counters.get(counter, 0) + amount
                )

    # -- simulated timeline ----------------------------------------------

    def _simulate_timeline(self, stats, map_times, reduce_times) -> float:
        cost = self.cost_model
        cores = self.cluster.total_cores
        map_tasks = [
            t * cost.compute_scale + cost.per_task_overhead_s
            for t in apply_speculative_execution(map_times)
        ]
        reduce_tasks = [
            t * cost.compute_scale + cost.per_task_overhead_s
            for t in apply_speculative_execution(reduce_times)
        ]
        seconds = cost.per_job_overhead_s
        seconds += cost.disk_seconds(stats.hdfs_read_bytes)
        seconds += schedule_makespan(map_tasks, cores)
        # Raw map output spills to local disk before combining (this is what
        # punishes jobs whose mappers emit a partial per record); the
        # combined output is fetched over the network and written once more
        # on the reduce side before reducing.
        seconds += cost.disk_seconds(stats.map_output_bytes)
        seconds += cost.disk_seconds(stats.shuffle_bytes)
        seconds += cost.network_seconds(stats.shuffle_bytes)
        seconds += schedule_makespan(reduce_tasks, cores)
        seconds += cost.disk_seconds(stats.hdfs_write_bytes)
        return seconds
