"""Chaining multiple MapReduce jobs into a pipeline.

Multi-job algorithms (Mahout's SSVD runs 4+ jobs per pass; sPCA runs 2 per
iteration) hand each job's output to the next through the distributed
filesystem.  :class:`JobChain` automates the plumbing: every intermediate
output is written to a generated HDFS path, charged as intermediate data,
and fed to the next job as its input.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

from repro.engine.mapreduce.api import MapReduceJob
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.errors import InvalidPlanError

Pair = tuple[Any, Any]


class JobChain:
    """A linear pipeline of MapReduce jobs.

    Example:
        >>> chain = JobChain(runtime, name="ssvd")     # doctest: +SKIP
        >>> chain.then(sketch_job).then(bt_job)        # doctest: +SKIP
        >>> output = chain.run(input_splits)           # doctest: +SKIP
    """

    def __init__(self, runtime: MapReduceRuntime, name: str = "chain"):
        self.runtime = runtime
        self.name = name
        self._jobs: list[MapReduceJob] = []

    def then(self, job: MapReduceJob) -> "JobChain":
        """Append a job; returns self for fluent chaining."""
        self._jobs.append(job)
        return self

    @property
    def jobs(self) -> Sequence[MapReduceJob]:
        return tuple(self._jobs)

    def run(self, input_data: str | Sequence[Sequence[Pair]]) -> list[Pair]:
        """Execute the chain; returns the final job's output records.

        Every non-final job gets an auto-generated ``output_path`` (unless it
        already has one) marked as intermediate, and the next job reads that
        path -- charging the HDFS round trip exactly as a real Hadoop
        pipeline would.
        """
        if not self._jobs:
            raise InvalidPlanError("job chain is empty")
        current: str | Sequence[Sequence[Pair]] = input_data
        output: list[Pair] = []
        for index, job in enumerate(self._jobs):
            is_last = index == len(self._jobs) - 1
            if not is_last and job.output_path is None:
                job = replace(
                    job,
                    output_path=f"{self.name}/stage-{index}/{job.name}",
                    output_is_intermediate=True,
                )
            output = self.runtime.run(job, current)
            current = job.output_path if job.output_path else [output]
        return output
