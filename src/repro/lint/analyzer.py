"""The lint driver: parse files, run every rule, filter suppressions.

Two passes: the first collects ``@contract`` declarations across *all* input
files (call sites usually live in a different module than the contracted
kernel); the second runs the dataflow rules per module with that shared
table.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding, collect_suppressions
from repro.lint.visitors import (
    ContractDecl,
    ModuleModel,
    collect_contract_decls,
    run_all_checks,
)


def iter_python_files(paths: Sequence[str | os.PathLike]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(files)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Iterable[str] | None = None,
    contract_table: dict[str, ContractDecl] | None = None,
) -> list[Finding]:
    """Lint one module's source text.

    Args:
        source: the module source.
        path: name used in findings.
        select: restrict to these rule codes (default: all rules).
        contract_table: cross-module ``@contract`` declarations for CT001;
            when omitted, declarations from *source* itself are used.

    Returns:
        Unsuppressed findings, sorted by location.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    if contract_table is None:
        contract_table = collect_contract_decls(tree)
    model = ModuleModel(path, tree)
    findings = run_all_checks(model, contract_table)
    suppressions = collect_suppressions(source, tree)
    selected = set(select) if select is not None else None
    return sorted(
        finding
        for finding in findings
        if not suppressions.is_suppressed(finding)
        and (selected is None or finding.code in selected)
    )


def lint_paths(
    paths: Sequence[str | os.PathLike],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under *paths* with a shared contract table."""
    files = iter_python_files(paths)
    sources: dict[Path, str] = {}
    trees: dict[Path, ast.Module] = {}
    contract_table: dict[str, ContractDecl] = {}
    parse_errors: list[Finding] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        sources[file] = source
        try:
            trees[file] = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            parse_errors.append(
                Finding(
                    path=str(file),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    code="E999",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        contract_table.update(collect_contract_decls(trees[file]))

    findings: list[Finding] = list(parse_errors)
    for file, tree in trees.items():
        model = ModuleModel(str(file), tree)
        raw = run_all_checks(model, contract_table)
        suppressions = collect_suppressions(sources[file], tree)
        findings.extend(f for f in raw if not suppressions.is_suppressed(f))
    selected = set(select) if select is not None else None
    if selected is not None:
        findings = [f for f in findings if f.code in selected]
    return sorted(findings)
