"""Streaming-PCA throughput benchmark: the BENCH_stream suite.

Streams one low-rank matrix through :class:`repro.stream.StreamingPCA` on
each engine (sequential reference, MapReduce runtime, Spark simulator) and
measures sustained row throughput, per-window wall percentiles, and the
backpressure gauge (buffered rows in window units).  Every engine scenario
is checked bitwise against the ``IncrementalPPCA.partial_fit_stream``
oracle over the same window sequence, so a throughput number on a model
that diverged from the reference can never be published.  A final
sub-measurement re-streams on the sequential engine with an every-window
checkpoint policy to price snapshot overhead.

Wall-clock only (real Python timings of the simulator, not simulated
cluster seconds); ratios and invariants are the meaningful quantities and
absolute timings are never asserted.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from perf.harness import REQUIRED_PROVENANCE_FIELDS, provenance
from repro.core.checkpoint import CheckpointPolicy, DirectoryCheckpointStore
from repro.extensions.incremental import IncrementalPPCA
from repro.obs.metrics import METRICS_SCHEMA, collecting
from repro.stream import MatrixSource, StreamConfig, StreamingPCA, reference_windows

STREAM_BENCH_NAME = "BENCH_stream"

ENGINES = ("sequential", "mapreduce", "spark")

REQUIRED_STREAM_FIELDS = {
    "engine",
    "rows",
    "windows",
    "window",
    "wall_s",
    "sustained_rows_per_s",
    "window_p50_ms",
    "window_p99_ms",
    "window_lag",
    "sim_seconds",
    "bitwise_equal",
}
REQUIRED_CHECKPOINT_FIELDS = {
    "plain_wall_s",
    "checkpointed_wall_s",
    "overhead_ratio",
    "checkpoints",
}


def _percentile_ms(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q) * 1e3)


def _window_lag(snapshot: dict, engine: str) -> float:
    for gauge in snapshot.get("gauges", []):
        if (
            gauge["name"] == "spca_stream_window_lag"
            and gauge["labels"].get("engine") == engine
        ):
            return float(gauge["value"])
    return 0.0


def _stream_once(
    data: np.ndarray, config: StreamConfig, engine: str, chunk_rows: int
):
    pca = StreamingPCA(config, engine)
    source = MatrixSource(data, chunk_rows=chunk_rows)
    started = time.perf_counter()
    result = pca.run(source)
    return result, time.perf_counter() - started


def run_stream_suite(quick: bool = False, repeats: int | None = None) -> dict:
    """Run the streaming benchmark; returns the BENCH_stream document."""
    if quick:
        n_rows, n_cols, rank, window, chunk_rows = 4_000, 24, 3, 200, 300
    else:
        n_rows, n_cols, rank, window, chunk_rows = 20_000, 48, 6, 500, 700
    repeats = repeats or (1 if quick else 3)
    rng = np.random.default_rng(5)
    data = (
        rng.normal(size=(n_rows, rank)) @ rng.normal(size=(rank, n_cols))
        + 0.05 * rng.normal(size=(n_rows, n_cols))
    )
    config = StreamConfig(n_components=rank, window=window, seed=13)
    oracle = IncrementalPPCA(rank, seed=13).partial_fit_stream(
        (w.rows for w in reference_windows(data, config.spec())), n_cols=n_cols
    )

    scenarios = []
    with collecting() as metrics:
        for engine in ENGINES:
            walls, result = [], None
            for _ in range(repeats):
                result, wall = _stream_once(data, config, engine, chunk_rows)
                walls.append(wall)
            wall = min(walls)
            window_walls = [record.wall_seconds for record in result.records]
            scenarios.append(
                {
                    "engine": engine,
                    "rows": result.rows,
                    "windows": result.windows,
                    "window": window,
                    "wall_s": wall,
                    "sustained_rows_per_s": result.rows / max(wall, 1e-12),
                    "window_p50_ms": _percentile_ms(window_walls, 50),
                    "window_p99_ms": _percentile_ms(window_walls, 99),
                    "window_lag": _window_lag(metrics.snapshot(), engine),
                    "sim_seconds": result.sim_seconds,
                    "bitwise_equal": bool(
                        np.array_equal(
                            result.model.components, oracle.components
                        )
                        and result.model.noise_variance == oracle.noise_variance
                    ),
                }
            )
        plain, plain_wall = _stream_once(data, config, "sequential", chunk_rows)
        with tempfile.TemporaryDirectory(prefix="spca-stream-bench-") as root:
            policy = CheckpointPolicy(DirectoryCheckpointStore(root), every=1)
            pca = StreamingPCA(config)
            started = time.perf_counter()
            snap = pca.run(
                MatrixSource(data, chunk_rows=chunk_rows), checkpoint=policy
            )
            snap_wall = time.perf_counter() - started
        checkpoint_overhead = {
            "plain_wall_s": plain_wall,
            "checkpointed_wall_s": snap_wall,
            "overhead_ratio": snap_wall / max(plain_wall, 1e-12),
            "checkpoints": snap.checkpoints,
        }
        del plain
        snapshot = metrics.snapshot()

    result_doc = {
        "bench": STREAM_BENCH_NAME,
        "quick": quick,
        "created_unix": time.time(),
        "provenance": provenance(
            n_rows=n_rows,
            n_cols=n_cols,
            rank=rank,
            window=window,
            chunk_rows=chunk_rows,
            repeats=repeats,
        ),
        "scenarios": scenarios,
        "checkpoint_overhead": checkpoint_overhead,
        "metrics": snapshot,
    }
    validate_stream(result_doc)
    return result_doc


def validate_stream(result: dict) -> None:
    """Schema check for a BENCH_stream document; raises ValueError on violation.

    Beyond shape, this enforces the suite's invariants: every engine
    scenario must be bitwise-identical to the incremental-PPCA oracle,
    sustained throughput must be positive, and the backpressure gauge must
    end below one window -- the runner drains every complete window before
    accepting the next arrival chunk, so a lag of >= 1.0 means windows were
    buffered without being processed.
    """
    for field in (
        "bench",
        "quick",
        "created_unix",
        "scenarios",
        "checkpoint_overhead",
    ):
        if field not in result:
            raise ValueError(f"missing top-level field {field!r}")
    if result["bench"] != STREAM_BENCH_NAME:
        raise ValueError(
            f"bench must be {STREAM_BENCH_NAME!r}, got {result['bench']!r}"
        )
    prov = result.get("provenance")
    if not isinstance(prov, dict):
        raise ValueError("missing top-level field 'provenance'")
    missing = REQUIRED_PROVENANCE_FIELDS - prov.keys()
    if missing:
        raise ValueError(f"provenance missing fields {sorted(missing)}")
    engines = set()
    for scenario in result["scenarios"]:
        missing = REQUIRED_STREAM_FIELDS - scenario.keys()
        if missing:
            raise ValueError(
                f"scenario {scenario.get('engine')!r} missing fields "
                f"{sorted(missing)}"
            )
        engines.add(scenario["engine"])
        if scenario["bitwise_equal"] is not True:
            raise ValueError(
                f"engine {scenario['engine']!r} diverged from the "
                "incremental-PPCA oracle"
            )
        for field in ("wall_s", "sustained_rows_per_s"):
            if not (isinstance(scenario[field], float) and scenario[field] > 0):
                raise ValueError(f"scenario field {field!r} must be positive")
        if not 0.0 <= scenario["window_lag"] < 1.0:
            raise ValueError(
                f"engine {scenario['engine']!r} window lag "
                f"{scenario['window_lag']} outside [0, 1): windows were "
                "buffered without being processed"
            )
        if scenario["window_p99_ms"] < scenario["window_p50_ms"]:
            raise ValueError("window_p99_ms must be >= window_p50_ms")
        if scenario["windows"] <= 0 or scenario["rows"] <= 0:
            raise ValueError("scenario processed no windows")
    if engines != set(ENGINES):
        raise ValueError(
            f"need scenarios for engines {sorted(ENGINES)}, got "
            f"{sorted(engines)}"
        )
    overhead = result["checkpoint_overhead"]
    missing = REQUIRED_CHECKPOINT_FIELDS - overhead.keys()
    if missing:
        raise ValueError(f"checkpoint_overhead missing fields {sorted(missing)}")
    if overhead["checkpoints"] <= 0:
        raise ValueError("checkpointed run recorded no checkpoints")
    for field in ("plain_wall_s", "checkpointed_wall_s"):
        if not (isinstance(overhead[field], float) and overhead[field] > 0):
            raise ValueError(f"checkpoint_overhead field {field!r} must be positive")
    snapshot = result.get("metrics")
    if snapshot is not None:
        if snapshot.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"metrics block schema must be {METRICS_SCHEMA!r}, "
                f"got {snapshot.get('schema')!r}"
            )
        streamed = [
            c
            for c in snapshot.get("counters", [])
            if c["name"] == "spca_stream_rows_total"
        ]
        if not streamed or sum(c["value"] for c in streamed) <= 0:
            raise ValueError("metrics block recorded no streamed rows")


def summarize_stream(result: dict) -> str:
    prov = result["provenance"]
    lines = [
        f"{result['bench']}  (quick={result['quick']}, cpus={prov['cpu_count']}, "
        f"sha={prov['git_sha'][:12]})"
    ]
    lines.append(
        f"{'engine':<12}{'rows':>8}{'windows':>9}{'rows/s':>10}"
        f"{'p50 ms':>9}{'p99 ms':>9}{'lag':>7}{'bitwise':>9}"
    )
    for scenario in result["scenarios"]:
        lines.append(
            f"{scenario['engine']:<12}{scenario['rows']:>8}"
            f"{scenario['windows']:>9}"
            f"{scenario['sustained_rows_per_s']:>10.0f}"
            f"{scenario['window_p50_ms']:>9.2f}"
            f"{scenario['window_p99_ms']:>9.2f}"
            f"{scenario['window_lag']:>7.2f}"
            f"{str(scenario['bitwise_equal']):>9}"
        )
    overhead = result["checkpoint_overhead"]
    lines.append(
        f"checkpoint overhead (every window, {overhead['checkpoints']} "
        f"snapshots): {overhead['overhead_ratio']:.2f}x"
    )
    return "\n".join(lines)


__all__ = [
    "STREAM_BENCH_NAME",
    "run_stream_suite",
    "summarize_stream",
    "validate_stream",
]
