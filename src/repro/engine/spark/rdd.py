"""Resilient Distributed Datasets: lazy lineage + actions.

Transformations build a lineage graph without computing anything; actions
walk the lineage per partition.  ``cache()`` stores computed partitions in
the cluster's :class:`BlockManager` so later actions skip recomputation --
the mechanism that makes iterative algorithms cheap on Spark and that sPCA
exploits by caching the input matrix RDD (Section 4.2).

Fault tolerance is by lineage recomputation, exactly as in the Spark paper:
when the context injects a task failure, the partition is simply computed
again from its ancestry.
"""

from __future__ import annotations

import threading
import time
import zlib
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.engine.serde import sizeof
from repro.errors import InvalidPlanError
from repro.obs import get_tracer
from repro.obs.metrics import count_cache_hit, get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.engine.spark.context import SparkContext


def _hash_partition(key: Any, num_partitions: int) -> int:
    # The ``& 0xFFFFFFFF`` pins crc32 to its unsigned 32-bit value so a
    # signed implementation reachable through a shim can never flip
    # partition assignments (see the pinned regression test).
    return (zlib.crc32(repr(key).encode()) & 0xFFFFFFFF) % num_partitions


class _PartitionCache:
    """Memoized key partitioner: one crc32 per distinct key repr.

    Shuffles route thousands of records over a handful of distinct keys;
    hashing each distinct repr once turns the per-record cost into a dict
    lookup while producing exactly :func:`_hash_partition`'s assignment.
    """

    def __init__(self, num_partitions: int):
        self.num_partitions = num_partitions
        self._cache: dict[str, int] = {}

    def __call__(self, key: Any) -> int:
        key_repr = repr(key)
        partition = self._cache.get(key_repr)
        if partition is None:
            partition = (
                zlib.crc32(key_repr.encode()) & 0xFFFFFFFF
            ) % self.num_partitions
            self._cache[key_repr] = partition
        return partition


class RDD:
    """An immutable, partitioned collection with lazy transformations."""

    def __init__(
        self,
        context: SparkContext,
        num_partitions: int,
        compute: Callable[[int, Any], list],
        parents: tuple["RDD", ...] = (),
    ):
        self.context = context
        self.num_partitions = num_partitions
        self._compute = compute
        self.parents = parents
        self.rdd_id = context.new_rdd_id()
        self._cached = False

    # -- construction ------------------------------------------------------

    @classmethod
    def _from_partitions(cls, context: SparkContext, partitions: list[list]) -> "RDD":
        data = [list(p) for p in partitions]
        return cls(context, len(data), lambda split, stats: list(data[split]))

    # -- lineage evaluation -------------------------------------------------

    def _iterator(self, split: int, stats=None) -> list:
        """Materialize one partition, honouring the cache.

        When a concurrent task scope is active (``ctx._active_scope()``),
        cache puts are deferred into the scope (with a local overlay so the
        task sees its own puts), trace events are buffered for ordered
        commit, and the lineage-recompute clock is per-scope -- concurrent
        attempts never touch shared driver state.
        """
        ctx = self.context
        scope = ctx._active_scope()
        tracer = get_tracer()
        if self._cached:
            if scope is not None:
                local = scope.overlay.get((self.rdd_id, split))
                if local is not None:
                    data, nbytes = local
                    # Buffer whenever either sink is live: scope events are
                    # replayed at driver commit into the tracer AND the
                    # metrics registry (concurrent tasks never count there
                    # directly).
                    if tracer.enabled or get_registry().enabled:
                        scope.events.append((
                            "cache_hit",
                            dict(rdd_id=self.rdd_id, split=split,
                                 bytes=nbytes, on_disk=False),
                        ))
                    return data
            block = ctx.block_manager.get(self.rdd_id, split)
            if block is not None:
                if block.on_disk and stats is not None:
                    stats.hdfs_read_bytes += block.nbytes
                registry = get_registry()
                if tracer.enabled or registry.enabled:
                    attrs = dict(
                        rdd_id=self.rdd_id, split=split,
                        bytes=block.nbytes, on_disk=block.on_disk,
                    )
                    if scope is not None:
                        scope.events.append(("cache_hit", attrs))
                    else:
                        # Unscoped evaluation runs on the driver thread, so
                        # count directly; scoped events are counted at commit.
                        if tracer.enabled:
                            tracer.event("cache_hit", **attrs)
                        if registry.enabled:
                            count_cache_hit(registry, block.nbytes)
                return block.data
        key = (self.rdd_id, split)
        # Under a concurrent scope the shared lost-block set is read-only:
        # recomputed keys are staged in the scope and discarded by the
        # driver at commit, so a sibling task never observes a mid-flight
        # mutation.  The scope's own discards mask the shared set, keeping
        # the retry loop's view identical to the serial immediate discard.
        was_lost = (
            self._cached
            and (scope is None or key not in scope.lost_discards)
            and key in ctx._lost_blocks
        )
        # Only the outermost lost block charges its recompute time: a lost
        # parent recomputed inside it is part of the same recovery work.
        depth = scope.recompute_depth if scope is not None else ctx._recompute_depth
        charge = was_lost and depth == 0
        if was_lost:
            if scope is not None:
                scope.recompute_depth += 1
            else:
                ctx._recompute_depth += 1
        started = time.perf_counter()
        try:
            data = self._compute(split, stats)
        finally:
            if was_lost:
                if scope is not None:
                    scope.recompute_depth -= 1
                    scope.lost_discards.add(key)
                else:
                    ctx._recompute_depth -= 1
                    ctx._lost_blocks.discard(key)
        if charge:
            elapsed = time.perf_counter() - started
            if scope is not None:
                scope.recompute_seconds += elapsed
                if tracer.enabled:
                    scope.events.append((
                        "lineage_recompute",
                        dict(rdd_id=self.rdd_id, split=split),
                    ))
            else:
                ctx._recompute_seconds += elapsed
                if tracer.enabled:
                    tracer.event(
                        "lineage_recompute", rdd_id=self.rdd_id, split=split
                    )
        if self._cached:
            nbytes = sizeof(data)
            if scope is not None:
                scope.puts.append((self.rdd_id, split, data, nbytes))
                scope.overlay[(self.rdd_id, split)] = (data, nbytes)
            else:
                ctx.block_manager.put(self.rdd_id, split, data, nbytes)
                ctx._journal_put(self.rdd_id, split)
        return data

    # -- transformations (lazy) ----------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        batch_fn: Callable[[list], list] | None = None,
    ) -> "RDD":
        """Element-wise transformation, with an optional batched fast path.

        When *batch_fn* is given and the context runs with batching enabled,
        each partition is transformed by one ``batch_fn(items)`` call (the
        ``mapPartitions``-style analogue of the MapReduce ``map_batch``
        protocol) instead of a per-element ``fn`` call; *fn* remains the
        per-record fallback and defines the semantics *batch_fn* must match.
        """
        if batch_fn is None:
            return self.map_partitions(lambda items: [fn(item) for item in items])

        def run(items: list) -> list:
            if self.context.enable_batch:
                return list(batch_fn(items))
            return [fn(item) for item in items]

        return self.map_partitions(run)

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "RDD":
        return self.map_partitions(
            lambda items: [out for item in items for out in fn(item)]
        )

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        return self.map_partitions(
            lambda items: [item for item in items if predicate(item)]
        )

    def map_partitions(self, fn: Callable[[list], Iterable[Any]]) -> "RDD":
        return RDD(
            self.context,
            self.num_partitions,
            lambda split, stats: list(fn(self._iterator(split, stats))),
            parents=(self,),
        )

    def map_partitions_with_index(
        self, fn: Callable[[int, list], Iterable[Any]]
    ) -> "RDD":
        return RDD(
            self.context,
            self.num_partitions,
            lambda split, stats: list(fn(split, self._iterator(split, stats))),
            parents=(self,),
        )

    def zip_partitions(self, other: "RDD", fn: Callable[[list, list], Iterable[Any]]) -> "RDD":
        """Combine co-partitioned RDDs partition-by-partition (zipPartitions)."""
        if other.context is not self.context:
            raise InvalidPlanError("cannot zip RDDs from different contexts")
        if other.num_partitions != self.num_partitions:
            raise InvalidPlanError(
                f"zip_partitions needs equal partition counts: "
                f"{self.num_partitions} vs {other.num_partitions}"
            )
        return RDD(
            self.context,
            self.num_partitions,
            lambda split, stats: list(
                fn(self._iterator(split, stats), other._iterator(split, stats))
            ),
            parents=(self, other),
        )

    def union(self, other: "RDD") -> "RDD":
        if other.context is not self.context:
            raise InvalidPlanError("cannot union RDDs from different contexts")
        mine = self.num_partitions

        def compute(split, stats):
            if split < mine:
                return self._iterator(split, stats)
            return other._iterator(split - mine, stats)

        return RDD(
            self.context, mine + other.num_partitions, compute, parents=(self, other)
        )

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        if not 0.0 < fraction <= 1.0:
            raise InvalidPlanError(f"fraction must be in (0, 1], got {fraction}")
        import numpy as np

        def sample_partition(split, items):
            rng = np.random.default_rng((seed, split))
            return [item for item in items if rng.random() < fraction]

        return self.map_partitions_with_index(sample_partition)

    def zip_with_index(self) -> "RDD":
        # Like Spark, this needs one extra pass to learn partition sizes.
        counts = self.context.run_job(self, len, name="zipWithIndex.counts")
        offsets = [0]
        for count in counts[:-1]:
            offsets.append(offsets[-1] + count)

        def attach(split, items):
            return [(item, offsets[split] + i) for i, item in enumerate(items)]

        return self.map_partitions_with_index(attach)

    # -- pair-RDD transformations ---------------------------------------------

    def map_values(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def keys(self) -> "RDD":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        return self.map(lambda kv: kv[1])

    def reduce_by_key(
        self, fn: Callable[[Any, Any], Any], num_partitions: int | None = None
    ) -> "RDD":
        return self._shuffle(fn, num_partitions, combine_values=True)

    def group_by_key(self, num_partitions: int | None = None) -> "RDD":
        grouped = self._shuffle(None, num_partitions, combine_values=False)
        return grouped

    def _shuffle(self, fn, num_partitions, combine_values: bool) -> "RDD":
        """Hash-shuffle this pair-RDD into *num_partitions* new partitions.

        Map-side combining happens per input partition when *fn* is given
        (mirroring Spark's reduceByKey); shuffle bytes are charged on the
        stage that first materializes the shuffled RDD.
        """
        if num_partitions is None:
            num_partitions = self.num_partitions
        state: dict[str, Any] = {"partitions": None, "lock": threading.Lock()}

        def materialize(stats):
            buckets: list[dict[Any, Any]] = [dict() for _ in range(num_partitions)]
            shuffle_bytes = 0
            partition_of = _PartitionCache(num_partitions)
            for split in range(self.num_partitions):
                local: dict[Any, Any] = {}
                for key, value in self._iterator(split, stats):
                    if combine_values:
                        local[key] = fn(local[key], value) if key in local else value
                    else:
                        local.setdefault(key, []).append(value)
                shuffle_bytes += sizeof(local)
                for key, value in local.items():
                    bucket = buckets[partition_of(key)]
                    if combine_values:
                        bucket[key] = fn(bucket[key], value) if key in bucket else value
                    else:
                        bucket.setdefault(key, []).extend(value)
            if stats is not None:
                stats.shuffle_bytes += shuffle_bytes
            state["partitions"] = [
                sorted(bucket.items(), key=lambda kv: repr(kv[0])) for bucket in buckets
            ]

        def compute(split, stats):
            # Double-checked lock: the first task of a concurrent stage
            # materializes the whole shuffle (charging its shuffle bytes to
            # that task's stats, as the serial first-compute did); the rest
            # reuse it.
            if state["partitions"] is None:
                with state["lock"]:
                    if state["partitions"] is None:
                        materialize(stats)
            return list(state["partitions"][split])

        return RDD(self.context, num_partitions, compute, parents=(self,))

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        """Deduplicate elements (hash shuffle, like Spark's distinct)."""
        paired = self.map(lambda item: (item, None))
        deduped = paired._shuffle(lambda a, b: a, num_partitions, combine_values=True)
        return deduped.keys()

    def sort_by(self, key_fn: Callable[[Any], Any], ascending: bool = True) -> "RDD":
        """Total sort (collect-based range partitioning simplification)."""
        state: dict[str, Any] = {"partitions": None, "lock": threading.Lock()}
        num_partitions = self.num_partitions

        def materialize(stats):
            everything = []
            for split in range(num_partitions):
                everything.extend(self._iterator(split, stats))
            everything.sort(key=key_fn, reverse=not ascending)
            if stats is not None:
                stats.shuffle_bytes += sizeof(everything)
            bounds = [
                (len(everything) * i) // num_partitions
                for i in range(num_partitions + 1)
            ]
            state["partitions"] = [
                everything[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])
            ]

        def compute(split, stats):
            if state["partitions"] is None:
                with state["lock"]:
                    if state["partitions"] is None:
                        materialize(stats)
            return list(state["partitions"][split])

        return RDD(self.context, num_partitions, compute, parents=(self,))

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Inner join of two pair-RDDs on their keys."""
        tagged = self.map_values(lambda v: ("l", v)).union(
            other.map_values(lambda v: ("r", v))
        )
        grouped = tagged.group_by_key(num_partitions or self.num_partitions)

        def emit(kv):
            key, tagged_values = kv
            left = [v for tag, v in tagged_values if tag == "l"]
            right = [v for tag, v in tagged_values if tag == "r"]
            return [(key, (lv, rv)) for lv in left for rv in right]

        return grouped.flat_map(emit)

    def glom(self) -> "RDD":
        """Each partition becomes a single list element."""
        return self.map_partitions(lambda items: [list(items)])

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce the partition count without a shuffle."""
        if num_partitions < 1:
            raise InvalidPlanError(f"num_partitions must be >= 1, got {num_partitions}")
        num_partitions = min(num_partitions, self.num_partitions)
        groups: list[list[int]] = [[] for _ in range(num_partitions)]
        for split in range(self.num_partitions):
            groups[split % num_partitions].append(split)

        def compute(split, stats):
            merged = []
            for parent_split in groups[split]:
                merged.extend(self._iterator(parent_split, stats))
            return merged

        return RDD(self.context, num_partitions, compute, parents=(self,))

    def repartition(self, num_partitions: int) -> "RDD":
        """Change the partition count with a full shuffle."""
        if num_partitions < 1:
            raise InvalidPlanError(f"num_partitions must be >= 1, got {num_partitions}")
        indexed = self.zip_with_index().map(lambda item: (item[1], item[0]))
        shuffled = indexed._shuffle(None, num_partitions, combine_values=False)
        return shuffled.flat_map(lambda kv: kv[1])

    def to_debug_string(self) -> str:
        """Render the lineage tree, like Spark's toDebugString."""
        lines: list[str] = []

        def walk(rdd: "RDD", depth: int) -> None:
            cached = " [cached]" if rdd._cached else ""
            lines.append(
                f"{'  ' * depth}({rdd.num_partitions}) RDD#{rdd.rdd_id}{cached}"
            )
            for parent in rdd.parents:
                walk(parent, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    # -- persistence -------------------------------------------------------

    def cache(self) -> "RDD":
        """Persist computed partitions in cluster memory (spill to disk)."""
        self._cached = True
        return self

    def unpersist(self) -> "RDD":
        self._cached = False
        self.context.block_manager.evict(self.rdd_id)
        return self

    # -- actions (eager) -----------------------------------------------------

    def collect(self) -> list:
        parts = self.context.run_job(self, list, name="collect")
        return [item for part in parts for item in part]

    def count(self) -> int:
        return sum(self.context.run_job(self, len, name="count"))

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        def reduce_partition(items):
            if not items:
                return None
            result = items[0]
            for item in items[1:]:
                result = fn(result, item)
            return result

        partials = [
            p
            for p in self.context.run_job(self, reduce_partition, name="reduce")
            if p is not None
        ]
        if not partials:
            raise InvalidPlanError("reduce of an empty RDD")
        result = partials[0]
        for partial in partials[1:]:
            result = fn(result, partial)
        return result

    def fold(self, zero: Any, fn: Callable[[Any, Any], Any]) -> Any:
        def fold_partition(items):
            result = zero
            for item in items:
                result = fn(result, item)
            return result

        result = zero
        for partial in self.context.run_job(self, fold_partition, name="fold"):
            result = fn(result, partial)
        return result

    def aggregate(self, zero: Any, seq_op, comb_op) -> Any:
        def aggregate_partition(items):
            result = zero
            for item in items:
                result = seq_op(result, item)
            return result

        partials = self.context.run_job(self, aggregate_partition, name="aggregate")
        result = partials[0]
        for partial in partials[1:]:
            result = comb_op(result, partial)
        return result

    def tree_aggregate(self, zero: Any, seq_op, comb_op) -> Any:
        """Provided for API parity; the simulation combines flat."""
        return self.aggregate(zero, seq_op, comb_op)

    def sum(self):
        return self.fold(0, lambda a, b: a + b)

    def take(self, count: int) -> list:
        taken: list = []
        for split in range(self.num_partitions):
            results = self.context.run_job(
                _SinglePartitionView(self, split), list, name="take"
            )
            taken.extend(results[0])
            if len(taken) >= count:
                break
        return taken[:count]

    def first(self) -> Any:
        taken = self.take(1)
        if not taken:
            raise InvalidPlanError("first() of an empty RDD")
        return taken[0]

    def foreach(self, fn: Callable[[Any], None]) -> None:
        def run_partition(items):
            for item in items:
                fn(item)
            return None

        self.context.run_job(self, run_partition, name="foreach")

    def foreach_partition(self, fn: Callable[[list], None]) -> None:
        def run_partition(items):
            fn(items)
            return None

        self.context.run_job(self, run_partition, name="foreachPartition")


class _SinglePartitionView(RDD):
    """Internal: exposes one partition of a parent RDD as its own RDD."""

    def __init__(self, parent: RDD, split: int):
        super().__init__(
            parent.context,
            1,
            lambda _, stats: parent._iterator(split, stats),
            parents=(parent,),
        )
