"""Model registry: versioning, tags, integrity, and the LRU load cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import PCAModel
from repro.errors import ModelIntegrityError, ModelNotFoundError, RegistryError
from repro.obs.metrics import collecting
from repro.serve import LATEST, ModelRegistry, parse_version


def _model(seed=0, n_features=6, n_components=2):
    rng = np.random.default_rng(seed)
    return PCAModel(
        components=rng.normal(size=(n_features, n_components)),
        mean=rng.normal(size=n_features),
        noise_variance=0.1,
        n_samples=100,
    )


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestVersioning:
    def test_parse_version_rejects_garbage(self):
        for bad in ("1.2", "v1.2.3", "1.2.3.4", "latest", "1.2.x"):
            with pytest.raises(RegistryError):
                parse_version(bad)

    def test_first_publish_is_1_0_0(self, registry):
        record = registry.publish("m", _model())
        assert record.version == "1.0.0"

    def test_auto_bump_increments_minor(self, registry):
        registry.publish("m", _model(0))
        record = registry.publish("m", _model(1))
        assert record.version == "1.1.0"

    def test_versions_sorted_numerically_not_lexically(self, registry):
        for version in ("1.9.0", "1.10.0", "1.2.0"):
            registry.publish("m", _model(), version=version)
        assert registry.versions("m") == ["1.2.0", "1.9.0", "1.10.0"]
        assert registry.resolve("m", LATEST) == "1.10.0"

    def test_republish_requires_overwrite(self, registry):
        registry.publish("m", _model(0), version="1.0.0")
        with pytest.raises(RegistryError):
            registry.publish("m", _model(1), version="1.0.0")
        registry.publish("m", _model(1), version="1.0.0", overwrite=True)

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(RegistryError):
            registry.publish("../escape", _model())


class TestTags:
    def test_tag_resolves(self, registry):
        registry.publish("m", _model(0), version="1.0.0")
        registry.publish("m", _model(1), version="1.1.0")
        registry.tag("m", "1.0.0", "prod")
        assert registry.resolve("m", "prod") == "1.0.0"
        assert registry.resolve("m", LATEST) == "1.1.0"

    def test_publish_with_tags(self, registry):
        registry.publish("m", _model(), tags=("prod", "canary"))
        assert registry.tags("m") == {"prod": "1.0.0", "canary": "1.0.0"}

    def test_latest_tag_reserved(self, registry):
        registry.publish("m", _model())
        with pytest.raises(RegistryError):
            registry.tag("m", "1.0.0", "latest")

    def test_tagging_missing_version_fails(self, registry):
        registry.publish("m", _model())
        with pytest.raises(ModelNotFoundError):
            registry.tag("m", "9.9.9", "prod")

    def test_unknown_spec_raises_not_found(self, registry):
        registry.publish("m", _model())
        with pytest.raises(ModelNotFoundError):
            registry.resolve("m", "staging")
        with pytest.raises(ModelNotFoundError):
            registry.resolve("nope")


class TestLoadingAndIntegrity:
    def test_get_round_trips_exact_bits(self, registry):
        model = _model(3)
        registry.publish("m", model)
        loaded = registry.get("m")
        assert np.array_equal(loaded.components, model.components)
        assert np.array_equal(loaded.mean, model.mean)

    def test_cache_returns_same_object(self, registry):
        registry.publish("m", _model())
        assert registry.get("m") is registry.get("m")

    def test_clear_cache_reloads(self, registry):
        registry.publish("m", _model())
        first = registry.get("m")
        registry.clear_cache()
        second = registry.get("m")
        assert first is not second
        assert np.array_equal(first.components, second.components)

    def test_lru_evicts_oldest(self, tmp_path):
        registry = ModelRegistry(tmp_path, cache_size=2)
        for i in range(3):
            registry.publish(f"m{i}", _model(i))
        a, b, c = (registry.get(f"m{i}") for i in range(3))
        assert registry.get("m2") is c  # still cached
        assert registry.get("m0") is not a  # evicted, reloaded

    def test_tampered_archive_raises_integrity_error(self, registry):
        record = registry.publish("m", _model())
        registry.clear_cache()
        data = bytearray(record.path.read_bytes())
        data[-1] ^= 0xFF
        record.path.write_bytes(bytes(data))
        with pytest.raises(ModelIntegrityError):
            registry.get("m")

    def test_verify_reports_tampering(self, registry):
        record = registry.publish("m", _model())
        assert registry.verify() == []
        record.path.write_bytes(b"not the model")
        problems = registry.verify()
        assert len(problems) == 1 and "m@1.0.0" in problems[0]

    def test_manifest_record_fields(self, registry):
        record = registry.publish("m", _model(), notes="from test")
        reread = registry.record("m", "1.0.0")
        assert reread.sha256 == record.sha256
        assert reread.n_features == 6
        assert reread.n_components == 2
        assert reread.notes == "from test"


class TestMetrics:
    def test_load_and_publish_counters(self, registry):
        with collecting() as metrics:
            registry.publish("m", _model())
            registry.clear_cache()
            registry.get("m")  # disk
            registry.get("m")  # cache
            publishes = metrics.find_counter(
                "spca_registry_publishes_total", model="m"
            )
            disk = metrics.find_counter("spca_registry_loads_total", source="disk")
            cache = metrics.find_counter("spca_registry_loads_total", source="cache")
        assert publishes is not None and publishes.value == 1
        assert disk is not None and disk.value == 1
        assert cache is not None and cache.value == 1
