"""The request layer and row-stable kernels: correctness is bitwise.

The serving contract is that batching, chunking, and executor choice are
*invisible*: the result for any row equals pushing that row through the
public ``PCAModel`` methods alone, bit for bit.  These tests pin that
contract for the synchronous :class:`PCAService` path; the batcher tests
extend it to coalesced asynchronous requests.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.model import PCAModel
from repro.engine.exec import make_executor
from repro.errors import ShapeError
from repro.serve import OPS, ModelRegistry, PCAService
from repro.serve import kernels


def _model(seed=0, n_features=12, n_components=3):
    rng = np.random.default_rng(seed)
    return PCAModel(
        components=rng.normal(size=(n_features, n_components)),
        mean=rng.normal(size=n_features),
        noise_variance=0.2,
        n_samples=200,
    )


@pytest.fixture
def service(tmp_path):
    registry = ModelRegistry(tmp_path)
    registry.publish("m", _model())
    return PCAService(registry)


@pytest.fixture
def dense_rows():
    return np.random.default_rng(5).normal(size=(17, 12))


class TestRowStableMatmul:
    def test_bitwise_identical_to_single_row(self):
        rng = np.random.default_rng(0)
        rows = rng.normal(size=(64, 20))
        right = rng.normal(size=(20, 4))
        batched = kernels.row_stable_matmul(rows, right)
        for i in range(rows.shape[0]):
            assert np.array_equal(batched[i], (rows[i : i + 1] @ right)[0])

    def test_sparse_rows_stable_under_stacking(self):
        rows = sp.random(40, 20, density=0.3, random_state=1, format="csr")
        right = np.random.default_rng(2).normal(size=(20, 4))
        whole = np.asarray(rows @ right)
        for i in range(rows.shape[0]):
            assert np.array_equal(whole[i], np.asarray(rows[i] @ right)[0])


class TestServiceOps:
    @pytest.mark.parametrize("op", OPS)
    def test_dense_batch_matches_single_row_reference(self, service, dense_rows, op):
        model = service.model("m")
        served = getattr(service, op)("m", dense_rows)
        reference = kernels.reference_rows(model, op, dense_rows)
        assert np.array_equal(served, reference)

    @pytest.mark.parametrize("op", OPS)
    def test_sparse_batch_matches_single_row_reference(self, service, op):
        rows = sp.random(15, 12, density=0.4, random_state=3, format="csr")
        model = service.model("m")
        served = getattr(service, op)("m", rows)
        reference = kernels.reference_rows(model, op, rows)
        assert np.array_equal(served, reference)

    def test_transform_agrees_with_model_transform(self, service, dense_rows):
        # The model's own multi-row gemm may differ from the row-stable
        # path in the last ulp (different BLAS blocking); the serve result
        # is *defined* by the single-row reference, and numerically equal
        # to the stacked gemm.
        model = service.model("m")
        served = service.transform("m", dense_rows)
        assert np.allclose(served, model.transform(dense_rows), atol=1e-12)
        single = np.vstack(
            [model.transform(dense_rows[i : i + 1]) for i in range(17)]
        )
        assert np.array_equal(served, single)

    def test_single_1d_row_returns_1d(self, service):
        row = np.arange(12.0)
        latent = service.transform("m", row)
        assert latent.ndim == 1
        model = service.model("m")
        assert np.array_equal(latent, model.transform(row[None, :])[0])

    def test_score_is_squared_reconstruction_error(self, service, dense_rows):
        model = service.model("m")
        scores = service.score("m", dense_rows)
        residual = dense_rows - model.reconstruct(dense_rows)
        assert np.allclose(scores, np.einsum("ij,ij->i", residual, residual))

    def test_3d_rows_rejected(self, service):
        with pytest.raises(ShapeError):
            service.transform("m", np.ones((2, 2, 12)))

    def test_wrong_width_rejected(self, service):
        with pytest.raises(ShapeError):
            service.transform("m", np.ones((3, 5)))

    def test_unknown_op_rejected(self, service):
        with pytest.raises(ShapeError):
            kernels.run_batch(service.model("m"), "fit", np.ones((2, 12)))


class TestExecutorChunking:
    @pytest.mark.parametrize("executor_name", ["threads", "processes"])
    @pytest.mark.parametrize("op", OPS)
    def test_chunked_dispatch_is_bitwise_invisible(
        self, tmp_path, executor_name, op
    ):
        registry = ModelRegistry(tmp_path)
        model = _model(7)
        registry.publish("m", model)
        rows = np.random.default_rng(11).normal(size=(23, 12))
        serial = getattr(PCAService(registry), op)("m", rows)
        with make_executor(executor_name, 2) as executor:
            service = PCAService(registry, executor=executor, chunk_rows=5)
            chunked = getattr(service, op)("m", rows)
        assert np.array_equal(serial, chunked)

    def test_split_rows_covers_batch(self):
        rows = np.arange(22.0).reshape(11, 2)
        chunks = kernels.split_rows(rows, 4)
        assert [c.shape[0] for c in chunks] == [4, 4, 3]
        assert np.array_equal(np.vstack(chunks), rows)
