"""Stop conditions and per-iteration bookkeeping for the EM loop."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IterationStats:
    """Measurements recorded after one EM iteration.

    Attributes:
        index: 1-based iteration number.
        noise_variance: fitted ss after this iteration.
        error: sampled 1-norm reconstruction error (None when skipped).
        accuracy: ``1 - error`` (None when error was skipped).
        elapsed_seconds: cumulative wall-clock time since fit start.
        simulated_seconds: cumulative simulated cluster time (0 for the
            sequential backend).
        intermediate_bytes: cumulative intermediate data produced so far.
    """

    index: int
    noise_variance: float
    error: float | None
    accuracy: float | None
    elapsed_seconds: float
    simulated_seconds: float
    intermediate_bytes: int


@dataclass
class TrainingHistory:
    """Ordered record of all iterations of a fit."""

    iterations: list[IterationStats] = field(default_factory=list)
    stop_reason: str = "max_iterations"

    def append(self, stats: IterationStats) -> None:
        self.iterations.append(stats)

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def final_accuracy(self) -> float | None:
        for stats in reversed(self.iterations):
            if stats.accuracy is not None:
                return stats.accuracy
        return None

    def accuracy_timeline(self, simulated: bool = True) -> list[tuple[float, float]]:
        """(time, accuracy) pairs, as plotted in Figures 4 and 5."""
        timeline = []
        for stats in self.iterations:
            if stats.accuracy is None:
                continue
            time = stats.simulated_seconds if simulated else stats.elapsed_seconds
            timeline.append((time, stats.accuracy))
        return timeline

    def time_to_accuracy(self, threshold: float, simulated: bool = True) -> float | None:
        """First time at which accuracy reached *threshold* (Figures 6/7)."""
        for time, accuracy in self.accuracy_timeline(simulated):
            if accuracy >= threshold:
                return time
        return None


class ConvergenceTracker:
    """Decides when the EM loop should stop.

    Three conditions, checked in order after every iteration:

    1. **target accuracy** -- accuracy reached ``target_accuracy *
       ideal_accuracy`` (the paper stops at 95% of ideal);
    2. **tolerance** -- the relative change of the reconstruction error
       between consecutive iterations fell below ``tolerance``;
    3. **iteration budget** -- ``max_iterations`` reached (the paper caps
       at 10).
    """

    def __init__(
        self,
        max_iterations: int,
        tolerance: float = 0.0,
        target_accuracy: float | None = None,
        ideal_accuracy: float | None = None,
    ):
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.target_accuracy = target_accuracy
        self.ideal_accuracy = ideal_accuracy
        self._previous_error: float | None = None
        self._iterations_done = 0
        self.stop_reason: str | None = None

    @property
    def previous_error(self) -> float | None:
        """Last recorded error (what the tolerance check compares against)."""
        return self._previous_error

    def restore(self, iterations_done: int, previous_error: float | None) -> None:
        """Reset the tracker to the state it had after *iterations_done*.

        Used when resuming a fit from a checkpoint: replaying the counter
        and the last seen error makes every later stop decision identical
        to the uninterrupted run's.
        """
        self._iterations_done = iterations_done
        self._previous_error = previous_error
        self.stop_reason = None

    def update(self, error: float | None) -> bool:
        """Record one finished iteration; return True when the loop must stop."""
        self._iterations_done += 1
        if error is not None:
            accuracy = 1.0 - error
            if (
                self.target_accuracy is not None
                and self.ideal_accuracy is not None
                and accuracy >= self.target_accuracy * self.ideal_accuracy
            ):
                self.stop_reason = "target_accuracy"
                return True
            if (
                self.tolerance > 0.0
                and self._previous_error is not None
                and abs(self._previous_error - error)
                <= self.tolerance * max(abs(self._previous_error), 1e-300)
            ):
                self.stop_reason = "tolerance"
                return True
            self._previous_error = error
        if self._iterations_done >= self.max_iterations:
            self.stop_reason = "max_iterations"
            return True
        return False
