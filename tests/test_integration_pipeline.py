"""End-to-end pipelines across modules: data -> storage -> fit -> use."""

import numpy as np
import pytest

from repro.backends import MapReduceBackend, SequentialBackend, SparkBackend
from repro.core import SPCA, SPCAConfig, load_model, save_model
from repro.data import bag_of_words, nmr_spectra
from repro.data.io import load_matrix, read_sparse_rows, save_matrix, write_sparse_rows
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext
from repro.metrics import (
    accuracy_from_error,
    ideal_accuracy,
    percent_of_ideal,
    reconstruction_error,
)

CLUSTER = ClusterSpec(num_nodes=2, cores_per_node=2)


def test_full_text_pipeline_through_disk(tmp_path):
    """generate -> text format -> reload -> fit -> persist -> reuse."""
    documents = bag_of_words(400, 120, words_per_doc=8.0, seed=41)
    text_path = write_sparse_rows(documents, tmp_path / "docs.txt")
    reloaded = read_sparse_rows(text_path)

    config = SPCAConfig(n_components=4, max_iterations=8, seed=1)
    model, history = SPCA(config).fit(reloaded)
    assert history.final_accuracy is not None

    model_path = save_model(model, tmp_path / "model")
    restored = load_model(model_path)
    latent = restored.transform(documents)
    assert latent.shape == (400, 4)

    matrix_path = save_matrix(latent, tmp_path / "latent")
    assert load_matrix(matrix_path).shape == (400, 4)


def test_dense_pipeline_on_both_engines(tmp_path):
    """The Diabetes-style dense workload, same answer on both platforms."""
    spectra = nmr_spectra(120, 300, n_metabolites=6, seed=42)
    config = SPCAConfig(n_components=5, max_iterations=6, tolerance=0.0, seed=2,
                        compute_error_every_iteration=False)
    models = {}
    for name, backend in (
        ("sequential", SequentialBackend(config)),
        ("mapreduce", MapReduceBackend(config, MapReduceRuntime(cluster=CLUSTER))),
        ("spark", SparkBackend(config, SparkContext(cluster=CLUSTER))),
    ):
        models[name], _ = SPCA(config, backend).fit(spectra)
    for name in ("mapreduce", "spark"):
        np.testing.assert_allclose(
            models[name].components, models["sequential"].components, atol=1e-8
        )


def test_accuracy_chain_is_consistent():
    """ideal_accuracy, reconstruction_error and percent_of_ideal cohere."""
    documents = bag_of_words(600, 200, words_per_doc=8.0, seed=43)
    ideal = ideal_accuracy(documents, 5)
    config = SPCAConfig(n_components=5, max_iterations=10, tolerance=0.0, seed=3,
                        ideal_accuracy=ideal, target_accuracy=0.95)
    model, history = SPCA(config).fit(documents)
    final = accuracy_from_error(
        reconstruction_error(documents, model.components, model.mean)
    )
    assert percent_of_ideal(final, ideal) >= 90.0
    if history.stop_reason == "target_accuracy":
        assert history.final_accuracy >= 0.95 * ideal


def test_smart_guess_pipeline_on_engine_backend():
    """sPCA-SG end to end on the MapReduce engine."""
    documents = bag_of_words(500, 150, words_per_doc=8.0, seed=44)
    config = SPCAConfig(n_components=3, max_iterations=4, tolerance=0.0, seed=4,
                        smart_init=True, smart_init_fraction=0.2,
                        smart_init_iterations=15)
    backend = MapReduceBackend(config, MapReduceRuntime(cluster=CLUSTER))
    model, history = SPCA(config, backend).fit(documents)
    assert history.n_iterations >= 1
    cold_config = config.with_options(smart_init=False)
    cold_model, cold_history = SPCA(
        cold_config, MapReduceBackend(cold_config, MapReduceRuntime(cluster=CLUSTER))
    ).fit(documents)
    # Warm start is at least as accurate after the same iteration budget.
    assert history.final_accuracy >= cold_history.final_accuracy - 0.05


def test_failure_injection_full_pipeline_both_engines():
    """Task failures on either platform leave the fitted model unchanged."""
    documents = bag_of_words(300, 80, words_per_doc=8.0, seed=45)
    config = SPCAConfig(n_components=3, max_iterations=4, tolerance=0.0, seed=5,
                        compute_error_every_iteration=False)
    reference, _ = SPCA(config, SequentialBackend(config)).fit(documents)
    flaky_mr = MapReduceBackend(
        config, MapReduceRuntime(cluster=CLUSTER, failure_rate=0.15, seed=9)
    )
    flaky_spark = SparkBackend(
        config, SparkContext(cluster=CLUSTER, failure_rate=0.15, seed=9)
    )
    model_mr, _ = SPCA(config, flaky_mr).fit(documents)
    model_spark, _ = SPCA(config, flaky_spark).fit(documents)
    np.testing.assert_allclose(model_mr.components, reference.components, atol=1e-8)
    np.testing.assert_allclose(model_spark.components, reference.components, atol=1e-8)
    assert flaky_mr.runtime.metrics.jobs[-1].task_retries >= 0


def test_baseline_and_spca_agree_on_strong_structure():
    """All implemented methods find the same dominant subspace."""
    from repro.baselines import CovariancePCA, SSVDPCAMapReduce
    from repro.metrics import subspace_angle_degrees

    rng = np.random.default_rng(46)
    data = rng.normal(size=(400, 3)) * np.array([20.0, 12.0, 6.0]) @ rng.normal(size=(3, 40))
    data = data + 0.1 * rng.normal(size=(400, 40))

    config = SPCAConfig(n_components=3, max_iterations=30, tolerance=1e-9, seed=6,
                        compute_error_every_iteration=False)
    spca_model, _ = SPCA(config).fit(data)
    mllib = CovariancePCA(3, SparkContext(cluster=CLUSTER)).fit(data)
    mahout = SSVDPCAMapReduce(
        3, power_iterations=2, runtime=MapReduceRuntime(cluster=CLUSTER)
    ).fit(data, compute_accuracy=False)

    assert subspace_angle_degrees(spca_model.basis, mllib.model.components) < 2.0
    assert subspace_angle_degrees(mahout.model.components, mllib.model.components) < 2.0
