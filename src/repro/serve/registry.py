"""Versioned on-disk registry of fitted :class:`~repro.core.model.PCAModel`s.

The registry is the durable half of PCA-as-a-service: ``publish`` persists a
fitted model through the atomic npz layer (:mod:`repro.core.persistence`),
stamps a manifest with a content hash, and assigns a semantic version;
``get`` resolves a name plus version/tag to a model, verifying the hash on
every disk load and keeping recently used models in a small LRU cache so the
serving hot path never touches disk.

Layout (everything under one root directory)::

    <root>/
      <name>/
        tags.json                    # {"prod": "1.2.0", ...}
        <version>/
          model.npz                  # atomic npz archive (save_model)
          manifest.json              # sha256, shapes, created_unix, notes

Both JSON files are written with the same temp-file + ``os.replace`` dance
as the archives, so a crash mid-publish never leaves a version that is
half-visible: either the manifest exists and describes a complete archive,
or the version does not resolve.

Version strings are strict ``MAJOR.MINOR.PATCH`` semantic versions.
``publish`` without an explicit version bumps the minor of the newest
published version (or starts at ``1.0.0``).  The spec ``"latest"`` always
resolves to the numerically newest version; any other label is looked up in
``tags.json``.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.model import PCAModel
from repro.core.persistence import _atomic_write, load_model, save_model
from repro.errors import ModelIntegrityError, ModelNotFoundError, RegistryError
from repro.obs.metrics import get_registry as get_metrics

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_SEMVER_RE = re.compile(r"^(\d+)\.(\d+)\.(\d+)$")
_TAG_RE = re.compile(r"^[A-Za-z][A-Za-z0-9._-]*$")

#: reserved spec resolved computationally, never stored in tags.json
LATEST = "latest"

_MANIFEST_VERSION = 1


def parse_version(version: str) -> tuple[int, int, int]:
    """Parse ``MAJOR.MINOR.PATCH``; raises :class:`RegistryError` otherwise."""
    match = _SEMVER_RE.match(version)
    if not match:
        raise RegistryError(
            f"invalid semantic version {version!r} (expected MAJOR.MINOR.PATCH)"
        )
    return int(match.group(1)), int(match.group(2)), int(match.group(3))


def _sha256_file(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write_json_atomic(path: pathlib.Path, payload: dict) -> None:
    data = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
    _atomic_write(path, lambda handle: handle.write(data))


@dataclass(frozen=True)
class ModelRecord:
    """Manifest of one published model version."""

    name: str
    version: str
    path: pathlib.Path
    sha256: str
    created_unix: float
    n_features: int
    n_components: int
    n_samples: int
    noise_variance: float
    notes: str = ""

    def to_manifest(self) -> dict:
        return {
            "manifest_version": _MANIFEST_VERSION,
            "name": self.name,
            "version": self.version,
            "sha256": self.sha256,
            "created_unix": self.created_unix,
            "n_features": self.n_features,
            "n_components": self.n_components,
            "n_samples": self.n_samples,
            "noise_variance": self.noise_variance,
            "notes": self.notes,
        }


class ModelRegistry:
    """Load-on-demand, integrity-checked store of named model versions.

    Args:
        root: registry directory (created on first publish).
        cache_size: LRU capacity for loaded models; 0 disables caching.

    Thread-safety: all public methods take an internal lock, so the async
    batcher's dispatcher thread and the caller's thread can share one
    registry instance.
    """

    def __init__(self, root: str | pathlib.Path, cache_size: int = 8):
        if cache_size < 0:
            raise RegistryError(f"cache_size must be >= 0, got {cache_size}")
        self.root = pathlib.Path(root)
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple[str, str], PCAModel] = OrderedDict()
        self._lock = threading.Lock()

    # -- paths ------------------------------------------------------------

    def _model_dir(self, name: str) -> pathlib.Path:
        return self.root / name

    def _version_dir(self, name: str, version: str) -> pathlib.Path:
        return self._model_dir(name) / version

    def _manifest_path(self, name: str, version: str) -> pathlib.Path:
        return self._version_dir(name, version) / "manifest.json"

    def _archive_path(self, name: str, version: str) -> pathlib.Path:
        return self._version_dir(name, version) / "model.npz"

    def _tags_path(self, name: str) -> pathlib.Path:
        return self._model_dir(name) / "tags.json"

    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_RE.match(name):
            raise RegistryError(f"invalid model name {name!r}")
        return name

    # -- listing / resolution ---------------------------------------------

    def models(self) -> list[str]:
        """All published model names, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and _NAME_RE.match(entry.name)
        )

    def versions(self, name: str) -> list[str]:
        """Published versions of *name*, oldest first; [] if unknown."""
        self._check_name(name)
        model_dir = self._model_dir(name)
        if not model_dir.is_dir():
            return []
        found = [
            entry.name
            for entry in model_dir.iterdir()
            if entry.is_dir()
            and _SEMVER_RE.match(entry.name)
            and self._manifest_path(name, entry.name).is_file()
        ]
        return sorted(found, key=parse_version)

    def tags(self, name: str) -> dict[str, str]:
        """The stored tag -> version map for *name* (without ``latest``)."""
        self._check_name(name)
        path = self._tags_path(name)
        if not path.is_file():
            return {}
        try:
            loaded = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise RegistryError(f"unreadable tags file at {path}: {exc}") from exc
        if not isinstance(loaded, dict):
            raise RegistryError(f"malformed tags file at {path}")
        return {str(k): str(v) for k, v in loaded.items()}

    def resolve(self, name: str, spec: str = LATEST) -> str:
        """Resolve *spec* (exact version, tag, or ``latest``) to a version."""
        self._check_name(name)
        if _SEMVER_RE.match(spec):
            with self._lock:
                if (name, spec) in self._cache:
                    return spec
            if self._manifest_path(name, spec).is_file():
                return spec
            raise ModelNotFoundError(
                f"model {name!r} has no published version {spec}"
            )
        versions = self.versions(name)
        if not versions:
            raise ModelNotFoundError(f"no model named {name!r} in {self.root}")
        if spec == LATEST:
            return versions[-1]
        tagged = self.tags(name).get(spec)
        if tagged is None:
            raise ModelNotFoundError(
                f"model {name!r} has no tag or version {spec!r} "
                f"(tags: {sorted(self.tags(name)) or 'none'})"
            )
        if tagged not in versions:
            raise ModelNotFoundError(
                f"tag {spec!r} of model {name!r} points at missing version {tagged}"
            )
        return tagged

    # -- publishing -------------------------------------------------------

    def _next_version(self, name: str) -> str:
        versions = self.versions(name)
        if not versions:
            return "1.0.0"
        major, minor, _ = parse_version(versions[-1])
        return f"{major}.{minor + 1}.0"

    def publish(
        self,
        name: str,
        model: PCAModel,
        version: str | None = None,
        tags: tuple[str, ...] | list[str] = (),
        notes: str = "",
        overwrite: bool = False,
    ) -> ModelRecord:
        """Persist *model* as ``name@version``; returns its manifest record.

        Without an explicit *version* the newest version's minor is bumped
        (``1.0.0`` for a new name).  Publishing over an existing version
        requires ``overwrite=True``.
        """
        self._check_name(name)
        if version is None:
            version = self._next_version(name)
        else:
            parse_version(version)
        for tag in tags:
            self._check_tag(tag)
        manifest_path = self._manifest_path(name, version)
        if manifest_path.is_file() and not overwrite:
            raise RegistryError(
                f"model {name}@{version} already published "
                f"(pass overwrite=True to replace)"
            )
        version_dir = self._version_dir(name, version)
        version_dir.mkdir(parents=True, exist_ok=True)
        archive = save_model(model, self._archive_path(name, version))
        record = ModelRecord(
            name=name,
            version=version,
            path=archive,
            sha256=_sha256_file(archive),
            created_unix=time.time(),
            n_features=model.n_features,
            n_components=model.n_components,
            n_samples=model.n_samples,
            noise_variance=float(model.noise_variance),
            notes=notes,
        )
        _write_json_atomic(manifest_path, record.to_manifest())
        for tag in tags:
            self.tag(name, version, tag)
        with self._lock:
            self._cache.pop((name, version), None)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("spca_registry_publishes_total", model=name).inc()
        return record

    @staticmethod
    def _check_tag(tag: str) -> str:
        if tag == LATEST:
            raise RegistryError(
                "the tag 'latest' is reserved (it always resolves to the "
                "numerically newest version)"
            )
        if not _TAG_RE.match(tag) or _SEMVER_RE.match(tag):
            raise RegistryError(f"invalid tag {tag!r}")
        return tag

    def tag(self, name: str, version: str, label: str) -> None:
        """Point tag *label* at ``name@version`` (atomic tags.json rewrite)."""
        self._check_name(name)
        self._check_tag(label)
        if not self._manifest_path(name, version).is_file():
            raise ModelNotFoundError(
                f"cannot tag: model {name!r} has no published version {version}"
            )
        tags = self.tags(name)
        tags[label] = version
        _write_json_atomic(self._tags_path(name), tags)

    # -- loading ----------------------------------------------------------

    def record(self, name: str, version_spec: str = LATEST) -> ModelRecord:
        """The manifest record for a resolved name/version."""
        version = self.resolve(name, version_spec)
        path = self._manifest_path(name, version)
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise RegistryError(f"unreadable manifest at {path}: {exc}") from exc
        return ModelRecord(
            name=name,
            version=version,
            path=self._archive_path(name, version),
            sha256=str(manifest["sha256"]),
            created_unix=float(manifest["created_unix"]),
            n_features=int(manifest["n_features"]),
            n_components=int(manifest["n_components"]),
            n_samples=int(manifest["n_samples"]),
            noise_variance=float(manifest["noise_variance"]),
            notes=str(manifest.get("notes", "")),
        )

    def get(self, name: str, version_spec: str = LATEST) -> PCAModel:
        """Load ``name@version_spec``, via the LRU cache when possible.

        Disk loads verify the archive's sha256 against the manifest before
        deserializing; a mismatch raises :class:`ModelIntegrityError`
        naming the file.
        """
        version = self.resolve(name, version_spec)
        key = (name, version)
        metrics = get_metrics()
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                if metrics.enabled:
                    metrics.counter(
                        "spca_registry_loads_total", source="cache"
                    ).inc()
                return cached
        record = self.record(name, version)
        actual = _sha256_file(record.path)
        if actual != record.sha256:
            if metrics.enabled:
                metrics.counter("spca_registry_integrity_failures_total").inc()
            raise ModelIntegrityError(
                f"content hash mismatch for {record.path}: manifest says "
                f"{record.sha256[:12]}..., file is {actual[:12]}..."
            )
        model = load_model(record.path)
        with self._lock:
            self._cache[key] = model
            self._cache.move_to_end(key)
            evicted = 0
            while self.cache_size and len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                evicted += 1
            if not self.cache_size:
                self._cache.clear()
        if metrics.enabled:
            metrics.counter("spca_registry_loads_total", source="disk").inc()
            if evicted:
                metrics.counter("spca_registry_cache_evictions_total").inc(evicted)
            metrics.gauge("spca_registry_cache_entries").set(len(self._cache))
        return model

    def verify(self, name: str | None = None) -> list[str]:
        """Re-hash every stored archive; returns problem descriptions."""
        problems: list[str] = []
        names = [name] if name is not None else self.models()
        for model_name in names:
            for version in self.versions(model_name):
                try:
                    record = self.record(model_name, version)
                except RegistryError as exc:
                    problems.append(f"{model_name}@{version}: {exc}")
                    continue
                if not record.path.is_file():
                    problems.append(
                        f"{model_name}@{version}: missing archive {record.path}"
                    )
                elif _sha256_file(record.path) != record.sha256:
                    problems.append(
                        f"{model_name}@{version}: content hash mismatch at "
                        f"{record.path}"
                    )
        return problems

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
