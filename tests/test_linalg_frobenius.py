"""Algorithms 2 and 3 must equal the dense reference Frobenius norm."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.linalg import (
    column_means,
    frobenius_centered_dense,
    frobenius_simple,
    frobenius_sparse,
)


@pytest.fixture
def sparse_matrix():
    return sp.random(80, 30, density=0.1, random_state=4, format="csr")


def test_simple_matches_dense(sparse_matrix):
    mean = column_means(sparse_matrix)
    assert frobenius_simple(sparse_matrix, mean) == pytest.approx(
        frobenius_centered_dense(sparse_matrix, mean)
    )


def test_sparse_matches_dense(sparse_matrix):
    mean = column_means(sparse_matrix)
    assert frobenius_sparse(sparse_matrix, mean) == pytest.approx(
        frobenius_centered_dense(sparse_matrix, mean)
    )


def test_sparse_matches_dense_on_dense_input():
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(25, 7))
    mean = column_means(matrix)
    assert frobenius_sparse(matrix, mean) == pytest.approx(
        frobenius_centered_dense(matrix, mean)
    )
    assert frobenius_simple(matrix, mean) == pytest.approx(
        frobenius_centered_dense(matrix, mean)
    )


def test_zero_matrix_norm_is_n_times_mean_norm():
    matrix = sp.csr_matrix((10, 4))
    mean = np.array([1.0, 2.0, 0.0, -1.0])
    assert frobenius_sparse(matrix, mean) == pytest.approx(10 * float(mean @ mean))


def test_zero_mean_reduces_to_plain_norm(sparse_matrix):
    mean = np.zeros(sparse_matrix.shape[1])
    expected = float(sparse_matrix.multiply(sparse_matrix).sum())
    assert frobenius_sparse(sparse_matrix, mean) == pytest.approx(expected)


def test_mean_length_mismatch_raises(sparse_matrix):
    with pytest.raises(ShapeError):
        frobenius_sparse(sparse_matrix, np.zeros(3))
    with pytest.raises(ShapeError):
        frobenius_simple(sparse_matrix, np.zeros(3))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=15),
    d_cols=st.integers(min_value=1, max_value=12),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_all_three_agree(n, d_cols, density, seed):
    rng = np.random.default_rng(seed)
    matrix = sp.random(
        n, d_cols, density=density, random_state=seed % 2**31, format="csr"
    )
    mean = rng.normal(size=d_cols)
    reference = frobenius_centered_dense(matrix, mean)
    assert frobenius_simple(matrix, mean) == pytest.approx(reference, abs=1e-8)
    assert frobenius_sparse(matrix, mean) == pytest.approx(reference, abs=1e-8)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_norm_nonnegative(seed):
    rng = np.random.default_rng(seed)
    matrix = sp.random(8, 6, density=0.5, random_state=seed % 2**31, format="csr")
    mean = rng.normal(size=6)
    assert frobenius_sparse(matrix, mean) >= -1e-12
