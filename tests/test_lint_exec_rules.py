"""Each EX rule fires on a minimal fixture and stays quiet on clean code."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def lint(source: str, select=None):
    return lint_source(textwrap.dedent(source), path="fixture.py", select=select)


def codes(findings):
    return sorted(finding.code for finding in findings)


# ---------------------------------------------------------------------------
# EX001: task function mutates shared driver state


def test_ex001_flags_subscript_store_into_driver_dict():
    findings = lint(
        """
        def run_phase(executor, payloads):
            results = {}

            def task(payload):
                results[payload.task_id] = payload.data
                return payload.task_id

            return executor.closure_executor().run_tasks(task, payloads)
        """,
        select={"EX001"},
    )
    assert codes(findings) == ["EX001"]
    assert "results" in findings[0].message


def test_ex001_flags_mutator_method_on_driver_list():
    findings = lint(
        """
        def run_phase(executor, payloads):
            collected = []

            def task(payload):
                collected.append(payload)
                return payload

            return executor.closure_executor().run_tasks(task, payloads)
        """,
        select={"EX001"},
    )
    assert codes(findings) == ["EX001"]
    assert "collected.append" in findings[0].message


def test_ex001_flags_nonlocal_rebinding():
    findings = lint(
        """
        def run_phase(executor, payloads):
            total = 0

            def task(payload):
                nonlocal total
                total += 1
                return payload

            return executor.closure_executor().run_tasks(task, payloads)
        """,
        select={"EX001"},
    )
    assert "EX001" in codes(findings)


def test_ex001_clean_on_pure_task_returning_outcome():
    findings = lint(
        """
        def _run_one(payload):
            return payload.task_id, payload.data * 2

        def run_phase(executor, payloads):
            return executor.run_tasks(_run_one, payloads)
        """,
        select={"EX001"},
    )
    assert codes(findings) == []


def test_ex001_clean_on_accumulator_add():
    # Accumulator.add stages through the task scope: sanctioned.
    findings = lint(
        """
        def run_phase(executor, payloads, ctx):
            counter = ctx.accumulator(0)

            def task(payload):
                counter.add(1)
                return payload

            return executor.closure_executor().run_tasks(task, payloads)
        """,
        select={"EX001"},
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# EX002: closure/lambda handed to the (potential) process executor


def test_ex002_flags_lambda_task():
    findings = lint(
        """
        def run_phase(executor, payloads):
            return executor.run_tasks(lambda p: p * 2, payloads)
        """,
        select={"EX002"},
    )
    assert codes(findings) == ["EX002"]
    assert "lambda" in findings[0].message


def test_ex002_flags_local_def_task():
    findings = lint(
        """
        def run_phase(executor, payloads):
            def task(payload):
                return payload * 2

            return executor.run_tasks(task, payloads)
        """,
        select={"EX002"},
    )
    assert codes(findings) == ["EX002"]
    assert "closure_executor" in findings[0].message


def test_ex002_clean_via_closure_executor():
    findings = lint(
        """
        def run_phase(executor, payloads):
            def task(payload):
                return payload * 2

            return executor.closure_executor().run_tasks(task, payloads)
        """,
        select={"EX002"},
    )
    assert codes(findings) == []


def test_ex002_clean_on_module_level_task():
    findings = lint(
        """
        def _task(payload):
            return payload * 2

        def run_phase(executor, payloads):
            return executor.run_tasks(_task, payloads)
        """,
        select={"EX002"},
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# EX003: driver-visible side effect emitted from inside a task


def test_ex003_flags_cache_put_inside_task():
    findings = lint(
        """
        def run_phase(executor, payloads, blocks):
            def task(payload):
                value = payload.data * 2
                blocks.put(payload.key, value)
                return value

            return executor.closure_executor().run_tasks(task, payloads)
        """,
        select={"EX003"},
    )
    assert codes(findings) == ["EX003"]
    assert "blocks.put" in findings[0].message


def test_ex003_flags_metrics_record_inside_task():
    findings = lint(
        """
        def run_phase(executor, payloads, metrics):
            def task(payload):
                metrics.record("map", 1.0)
                return payload

            return executor.closure_executor().run_tasks(task, payloads)
        """,
        select={"EX003"},
    )
    assert codes(findings) == ["EX003"]


def test_ex003_flags_tracer_acquired_inside_task():
    findings = lint(
        """
        def run_phase(executor, payloads):
            def task(payload):
                get_tracer().event("task_start", task=payload.task_id)
                return payload

            return executor.closure_executor().run_tasks(task, payloads)
        """,
        select={"EX003"},
    )
    assert codes(findings) == ["EX003"]
    assert "tracer" in findings[0].message


def test_ex003_clean_when_side_effects_returned_as_outcome():
    findings = lint(
        """
        def run_phase(executor, payloads):
            def task(payload):
                events = [("task_done", payload.task_id)]
                return payload.data, events

            return executor.closure_executor().run_tasks(task, payloads)
        """,
        select={"EX003"},
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# EX004: shm segment lifetime pairing


def test_ex004_flags_create_without_lifecycle():
    findings = lint(
        """
        from multiprocessing.shared_memory import SharedMemory

        def share(data):
            segment = SharedMemory(create=True, size=len(data))
            segment.buf[: len(data)] = data
            return segment.name
        """,
        select={"EX004"},
    )
    assert codes(findings) == ["EX004"]
    assert "segment" in findings[0].message


def test_ex004_clean_with_finalizer():
    findings = lint(
        """
        import weakref
        from multiprocessing.shared_memory import SharedMemory

        def share(owner, data):
            segment = SharedMemory(create=True, size=len(data))
            weakref.finalize(owner, segment.close)
            return segment.name
        """,
        select={"EX004"},
    )
    assert codes(findings) == []


def test_ex004_clean_with_registry_store():
    findings = lint(
        """
        from multiprocessing.shared_memory import SharedMemory

        class Registry:
            def __init__(self):
                self._segments = {}

            def share(self, data):
                segment = SharedMemory(create=True, size=len(data))
                self._segments[segment.name] = segment
                return segment.name
        """,
        select={"EX004"},
    )
    assert codes(findings) == []


def test_ex004_clean_with_pin_registrar_call():
    # Cross-iteration pinning: the segment is handed to an owning registry
    # (pin/register/track/adopt) that manages its lifetime explicitly.
    findings = lint(
        """
        from multiprocessing.shared_memory import SharedMemory

        def pin_blob(registry, blob):
            segment = SharedMemory(create=True, size=len(blob))
            segment.buf[: len(blob)] = blob
            registry.pin(segment)
            return segment.name
        """,
        select={"EX004"},
    )
    assert codes(findings) == []


def test_ex004_clean_with_registrar_taking_segment_name():
    findings = lint(
        """
        from multiprocessing.shared_memory import SharedMemory

        def pin_blob(registry, blob):
            segment = SharedMemory(create=True, size=len(blob))
            segment.buf[: len(blob)] = blob
            registry.track_segment(segment.name, owner="resident")
            return segment.name
        """,
        select={"EX004"},
    )
    assert codes(findings) == []


def test_ex004_registrar_call_on_other_object_still_flags():
    # A pin-style call that never receives this segment does not pair it.
    findings = lint(
        """
        from multiprocessing.shared_memory import SharedMemory

        def pin_blob(registry, blob, other):
            segment = SharedMemory(create=True, size=len(blob))
            registry.pin(other)
            return segment.name
        """,
        select={"EX004"},
    )
    assert codes(findings) == ["EX004"]


def test_ex004_flags_attach_without_unregister():
    findings = lint(
        """
        from multiprocessing.shared_memory import SharedMemory

        def attach(name):
            segment = SharedMemory(name=name)
            return segment.buf
        """,
        select={"EX004"},
    )
    assert codes(findings) == ["EX004"]
    assert "unregister" in findings[0].message


def test_ex004_clean_attach_with_unregister():
    findings = lint(
        """
        from multiprocessing.resource_tracker import unregister
        from multiprocessing.shared_memory import SharedMemory

        def attach(name):
            segment = SharedMemory(name=name)
            unregister(segment._name, "shared_memory")
            return segment.buf
        """,
        select={"EX004"},
    )
    assert codes(findings) == []


# ---------------------------------------------------------------------------
# EX005: nondeterminism sources in task/kernel code


def test_ex005_flags_wall_clock_in_task():
    findings = lint(
        """
        import time

        def _task(payload):
            return payload, time.time()

        def run_phase(executor, payloads):
            return executor.run_tasks(_task, payloads)
        """,
        select={"EX005"},
    )
    assert codes(findings) == ["EX005"]
    assert "wall-clock" in findings[0].message


def test_ex005_allows_perf_counter_timing():
    findings = lint(
        """
        import time

        def _task(payload):
            start = time.perf_counter()
            result = payload * 2
            return result, time.perf_counter() - start

        def run_phase(executor, payloads):
            return executor.run_tasks(_task, payloads)
        """,
        select={"EX005"},
    )
    assert codes(findings) == []


def test_ex005_flags_global_rng_in_task():
    findings = lint(
        """
        import numpy as np

        def _task(payload):
            return payload + np.random.standard_normal(payload.shape)

        def run_phase(executor, payloads):
            return executor.run_tasks(_task, payloads)
        """,
        select={"EX005"},
    )
    assert codes(findings) == ["EX005"]
    assert "random state" in findings[0].message


def test_ex005_allows_seeded_generator():
    findings = lint(
        """
        import numpy as np

        def _task(payload):
            rng = np.random.default_rng(payload.seed)
            return payload.data + rng.standard_normal(payload.data.shape)

        def run_phase(executor, payloads):
            return executor.run_tasks(_task, payloads)
        """,
        select={"EX005"},
    )
    assert codes(findings) == []


def test_ex005_flags_unseeded_default_rng():
    findings = lint(
        """
        import numpy as np

        def _task(payload):
            rng = np.random.default_rng()
            return payload + rng.standard_normal(payload.shape)

        def run_phase(executor, payloads):
            return executor.run_tasks(_task, payloads)
        """,
        select={"EX005"},
    )
    assert codes(findings) == ["EX005"]
    assert "unseeded" in findings[0].message


def test_ex005_flags_builtin_hash_partitioning():
    findings = lint(
        """
        def _task(payload):
            return hash(payload.key) % payload.partitions

        def run_phase(executor, payloads):
            return executor.run_tasks(_task, payloads)
        """,
        select={"EX005"},
    )
    assert codes(findings) == ["EX005"]
    assert "crc32" in findings[0].message


def test_ex005_flags_set_iteration_in_mapper():
    findings = lint(
        """
        class CountMapper(Mapper):
            def map(self, key, value):
                for item in set(value):
                    self.emit(item, 1)
        """,
        select={"EX005"},
    )
    assert codes(findings) == ["EX005"]
    assert "deterministic order" in findings[0].message


def test_ex005_flags_wall_clock_in_contract_kernel():
    findings = lint(
        """
        import time
        from repro.lint.contracts import contract

        @contract("A[n,d] -> B[n,d]")
        def kernel(A):
            return A * time.time()
        """,
        select={"EX005"},
    )
    assert codes(findings) == ["EX005"]


def test_ex005_suppression_comment_waives_finding():
    findings = lint(
        """
        import time

        def _task(payload):  # repro-lint: disable=EX005
            return payload, time.time()

        def run_phase(executor, payloads):
            return executor.run_tasks(_task, payloads)
        """,
        select={"EX005"},
    )
    assert codes(findings) == []
