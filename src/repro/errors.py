"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """An array or matrix argument has an incompatible shape."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid (the message names valid choices)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""


class ContractViolationError(ShapeError):
    """A runtime shape/dtype contract on a kernel was violated.

    Subclasses :class:`ShapeError` so callers that guard kernel calls with
    ``except ShapeError`` keep working whether the contract layer or the
    kernel's own validation trips first.
    """


class CombinerAlgebraError(ReproError, AssertionError):
    """A registered combiner failed its commutativity/associativity check."""


class CheckpointError(ReproError, RuntimeError):
    """An EM checkpoint could not be saved, loaded, or resumed from."""


class PersistenceError(ReproError, RuntimeError):
    """A model archive on disk is corrupt or unreadable.

    Raised by :func:`repro.core.persistence.load_model` when the ``.npz``
    file cannot be decoded (a truncated write, a bad disk, a non-archive
    file); the message names the offending path.  Missing *fields* inside a
    well-formed archive still raise :class:`ShapeError`.
    """


class RegistryError(ReproError, RuntimeError):
    """A model-registry operation failed."""


class ModelNotFoundError(RegistryError, LookupError):
    """No registered model matches the requested name/version/tag."""


class ModelIntegrityError(RegistryError):
    """A registry artifact's content hash does not match its manifest."""


class ServeError(ReproError, RuntimeError):
    """Base class for serving-layer failures."""


class QueueFullError(ServeError):
    """The micro-batcher's request queue is at capacity (backpressure)."""


class DeadlineExceededError(ServeError):
    """A request's deadline expired before its batch was dispatched."""


class ServiceClosedError(ServeError):
    """The serving front-end has shut down and rejects new requests."""


class EngineError(ReproError, RuntimeError):
    """Base class for distributed-engine failures."""


class JobFailedError(EngineError):
    """A distributed job exhausted its task retries and was aborted."""


class DriverOutOfMemoryError(EngineError, MemoryError):
    """A driver-side allocation exceeded the configured driver memory.

    This is the failure mode the paper reports for MLlib-PCA: the D x D
    covariance matrix must fit in the memory of a single machine, and the
    algorithm fails once D exceeds a few thousand columns (Section 5.3).
    """

    def __init__(self, requested_bytes: int, limit_bytes: int, what: str = "allocation"):
        self.requested_bytes = requested_bytes
        self.limit_bytes = limit_bytes
        self.what = what
        super().__init__(
            f"driver out of memory: {what} needs {requested_bytes} bytes "
            f"but only {limit_bytes} bytes of driver memory are configured"
        )


class ExecutorOutOfMemoryError(EngineError, MemoryError):
    """Aggregate executor memory was exhausted and spilling is disabled."""


class FileSystemError(EngineError, IOError):
    """A simulated distributed file-system operation failed."""


class InvalidPlanError(EngineError, ValueError):
    """A job or RDD lineage graph is structurally invalid."""
