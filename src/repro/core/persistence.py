"""Saving and loading fitted models.

Models are stored as ``.npz`` archives with a format-version field so
future releases can evolve the layout without breaking old files.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.model import PCAModel
from repro.errors import ShapeError

_FORMAT_VERSION = 1


def save_model(model: PCAModel, path: str | pathlib.Path) -> pathlib.Path:
    """Write *model* to an ``.npz`` archive; returns the path written.

    The ``.npz`` suffix is appended when missing (numpy does the same).
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        components=model.components,
        mean=model.mean,
        noise_variance=np.float64(model.noise_variance),
        n_samples=np.int64(model.n_samples),
    )
    return path


def load_model(path: str | pathlib.Path) -> PCAModel:
    """Read a model previously written by :func:`save_model`.

    Raises:
        ShapeError: if the archive is missing fields or has an unsupported
            format version.
    """
    with np.load(path) as archive:
        missing = {
            "format_version", "components", "mean", "noise_variance", "n_samples"
        } - set(archive.files)
        if missing:
            raise ShapeError(f"model archive is missing fields: {sorted(missing)}")
        version = int(archive["format_version"])
        if version > _FORMAT_VERSION:
            raise ShapeError(
                f"model archive format v{version} is newer than this library "
                f"understands (v{_FORMAT_VERSION})"
            )
        return PCAModel(
            components=archive["components"],
            mean=archive["mean"],
            noise_variance=float(archive["noise_variance"]),
            n_samples=int(archive["n_samples"]),
        )
