"""PPCA over incomplete data: EM with per-row observed subsets.

Because PPCA is a proper latent-variable model, the E-step conditions each
row's latent posterior only on that row's *observed* entries, and the
M-step accumulates per-feature normal equations over the rows that observe
each feature (the Ilin & Raiko formulation).  No imputation is needed
during fitting; :meth:`MissingValuePPCA.impute` afterwards fills the gaps
with the model's posterior reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import PCAModel
from repro.errors import ConvergenceError, ShapeError


@dataclass
class MissingValuePPCA:
    """PPCA fitted to a dense matrix with NaN-marked missing entries.

    Args:
        n_components: latent dimensionality d.
        max_iterations: EM iteration budget.
        tolerance: relative change of ss below which the loop stops.
        seed: seed for the random initialization.
    """

    n_components: int
    max_iterations: int = 100
    tolerance: float = 1e-6
    seed: int = 0

    def fit(self, data: np.ndarray) -> PCAModel:
        """Run EM and return the fitted model.

        Args:
            data: dense (N, D) array; missing entries are NaN.  Every row
                and every column must have at least one observed entry.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ShapeError("data must be a 2-D array")
        observed = ~np.isnan(data)
        if not observed.any():
            raise ShapeError("all entries are missing")
        if not observed.any(axis=1).all():
            raise ShapeError("every row needs at least one observed entry")
        if not observed.any(axis=0).all():
            raise ShapeError("every column needs at least one observed entry")

        n_rows, n_cols = data.shape
        d = self.n_components
        if d > min(n_rows, n_cols):
            raise ShapeError(
                f"n_components={d} exceeds min(N, D)={min(n_rows, n_cols)}"
            )
        rng = np.random.default_rng(self.seed)

        # Observed column means; centered data with NaNs kept as NaN.
        col_sums = np.where(observed, data, 0.0).sum(axis=0)
        col_counts = observed.sum(axis=0)
        mean = col_sums / col_counts
        centered = np.where(observed, data - mean, 0.0)

        components = rng.normal(size=(n_cols, d))
        ss = 1.0
        previous_ss = None
        identity = np.eye(d)
        n_observed = int(observed.sum())

        for _ in range(self.max_iterations):
            # E-step: per-row posterior over the observed coordinates only.
            latent = np.zeros((n_rows, d))
            second_moments = np.zeros((n_rows, d, d))
            for i in range(n_rows):
                obs = observed[i]
                c_obs = components[obs]
                moment = c_obs.T @ c_obs + ss * identity
                moment_inv = np.linalg.inv(moment)
                latent[i] = moment_inv @ (c_obs.T @ centered[i, obs])
                second_moments[i] = ss * moment_inv + np.outer(latent[i], latent[i])

            # M-step, per feature j over the rows observing j.
            new_components = np.empty_like(components)
            for j in range(n_cols):
                rows = observed[:, j]
                normal_matrix = second_moments[rows].sum(axis=0)
                rhs = latent[rows].T @ centered[rows, j]
                new_components[j] = np.linalg.solve(
                    normal_matrix + 1e-12 * identity, rhs
                )
            components = new_components

            # Noise variance over observed entries.
            total = 0.0
            for i in range(n_rows):
                obs = observed[i]
                c_obs = components[obs]
                residual = centered[i, obs] - c_obs @ latent[i]
                total += float(residual @ residual)
                total += float(
                    np.trace(c_obs @ (second_moments[i] - np.outer(latent[i], latent[i])) @ c_obs.T)
                )
            ss = max(total / n_observed, 1e-12)

            if previous_ss is not None and abs(previous_ss - ss) <= self.tolerance * previous_ss:
                break
            previous_ss = ss
        else:
            if self.tolerance > 0 and self.max_iterations >= 100:
                raise ConvergenceError(
                    f"missing-value PPCA did not converge in {self.max_iterations} iterations"
                )

        self.model_ = PCAModel(
            components=components, mean=mean, noise_variance=ss, n_samples=n_rows
        )
        return self.model_

    def impute(self, data: np.ndarray) -> np.ndarray:
        """Fill the NaN entries of *data* with the model's reconstruction."""
        if not hasattr(self, "model_"):
            raise ConvergenceError("fit must be called before impute")
        data = np.asarray(data, dtype=np.float64)
        model = self.model_
        observed = ~np.isnan(data)
        result = data.copy()
        identity = np.eye(model.n_components)
        for i in range(data.shape[0]):
            obs = observed[i]
            if obs.all():
                continue
            c_obs = model.components[obs]
            moment = c_obs.T @ c_obs + model.noise_variance * identity
            latent = np.linalg.solve(moment, c_obs.T @ (data[i, obs] - model.mean[obs]))
            reconstruction = model.components @ latent + model.mean
            result[i, ~obs] = reconstruction[~obs]
        return result
