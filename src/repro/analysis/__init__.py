"""Analytical models from Section 2 of the paper."""

from repro.analysis.phases import Phase, breakdown_totals, phase_breakdown
from repro.analysis.cost_model import (
    METHODS,
    MethodCosts,
    communication_complexity,
    method_costs,
    table1,
    time_complexity,
)

__all__ = [
    "METHODS",
    "Phase",
    "breakdown_totals",
    "phase_breakdown",
    "MethodCosts",
    "communication_complexity",
    "method_costs",
    "table1",
    "time_complexity",
]
