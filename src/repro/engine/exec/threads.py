"""The thread-pool executor.

Threads share the interpreter, so task payloads and results cross for free
(no pickling) and closure-capturing Spark partition functions work
unchanged.  The GIL limits pure-Python speedup, but the engines' hot loops
spend their time inside numpy/scipy kernels that release the GIL, which is
where thread-level parallelism pays.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.engine.exec.base import (
    TaskExecutor,
    default_worker_count,
    reraise_first_failure,
)


def _timed(fn: Callable[[Any], Any], payload: Any) -> tuple[Any, float]:
    started = time.perf_counter()
    result = fn(payload)
    return result, time.perf_counter() - started


class ThreadPoolTaskExecutor(TaskExecutor):
    """Runs tasks on a lazily-created ``ThreadPoolExecutor``."""

    name = "threads"

    def __init__(self, workers: int | None = None):
        super().__init__(workers=workers or default_worker_count())
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            )
        return self._pool

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        label: str = "tasks",
    ) -> list[Any]:
        if not payloads:
            return []
        started = time.perf_counter()
        self._emit_dispatch(label, len(payloads))
        pool = self._ensure_pool()
        futures = [pool.submit(_timed, fn, payload) for payload in payloads]
        results: list[Any] = [None] * len(futures)
        walls: list[float] = [0.0] * len(futures)
        errors: list[tuple[int, BaseException]] = []
        for index, future in enumerate(futures):
            try:
                results[index], walls[index] = future.result()
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors.append((index, error))
        self._emit_join(label, walls, started)
        reraise_first_failure(errors)
        return results

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        super().shutdown()
