"""Quickstart: fit sPCA on a synthetic dataset and inspect the model.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import SPCA, SPCAConfig
from repro.data import lowrank_dense
from repro.metrics import accuracy_from_error, reconstruction_error


def main() -> None:
    # A 2,000 x 50 dense matrix with rank-5 structure plus noise.
    data = lowrank_dense(n_rows=2_000, n_cols=50, rank=5, noise=0.1, seed=42)

    config = SPCAConfig(n_components=5, max_iterations=30, tolerance=1e-6, seed=0)
    model, history = SPCA(config).fit(data)

    print(f"fitted {model.n_components} components over {model.n_features} features")
    print(f"iterations: {history.n_iterations} (stop reason: {history.stop_reason})")
    print(f"noise variance ss = {model.noise_variance:.6f}")

    error = reconstruction_error(data, model.components, model.mean)
    print(f"reconstruction accuracy: {accuracy_from_error(error):.4f}")

    # Project to the 5-dimensional latent space and back.
    latent = model.transform(data)
    restored = model.inverse_transform(latent)
    print(f"latent shape: {latent.shape}, restored shape: {restored.shape}")

    # Explained variance per principal direction.
    directions, variances = model.principal_directions(data)
    shares = variances / variances.sum()
    print("variance split across components:", np.round(shares, 3))


if __name__ == "__main__":
    main()
