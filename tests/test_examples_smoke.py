"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; each is executed in-process
(imported and run through its ``main``) with stdout captured, asserting on
a signature line of its output.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(
        f"examples.{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    output = run_example("quickstart", capsys)
    assert "reconstruction accuracy" in output
    assert "variance split" in output


def test_text_topics(capsys):
    output = run_example("text_topics", capsys)
    assert "PC1" in output
    assert "engine job summary" in output


def test_image_compression(capsys):
    output = run_example("image_compression", capsys)
    assert "sPCA accuracy" in output
    assert "MLlib accuracy" in output


def test_metabolomics(capsys):
    output = run_example("metabolomics", capsys)
    assert "explain" in output
    assert "PC1 peak resonances" in output


def test_platform_comparison(capsys):
    output = run_example("platform_comparison", capsys)
    assert "sequential" in output
    assert "max |C_spark - C_sequential|" in output


def test_streaming_pca(capsys):
    output = run_example("streaming_pca", capsys)
    assert "streamed" in output
    assert "drift fired at window" in output
    assert output.count("bitwise equal") >= 2
    assert "False" not in output


def test_optimization_ablation(capsys):
    output = run_example("optimization_ablation", capsys)
    assert "all optimizations on" in output
    assert "without mean_propagation" in output
