"""SVD-Lanczos: Golub-Kahan-Lanczos bidiagonalization for sparse matrices.

Section 2.2: "SVD can be computed efficiently for sparse matrices using
Lanczos' algorithm ... implemented in popular libraries such as Mahout and
GraphLab."  The catch the paper emphasizes -- and which this implementation
lets you measure -- is that PCA needs the *centered* matrix, and explicit
centering densifies a sparse input, inflating the per-iteration cost from
O(nnz) to O(N*D).  With ``center="propagate"`` the centering is folded into
the matrix-vector products instead, preserving sparsity (the same idea sPCA
uses); ``center="densify"`` reproduces the naive behaviour.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError, ShapeError
from repro.linalg.operators import CenteredOperator
from repro.linalg.stats import column_means


def lanczos_svd(
    data,
    n_components: int,
    n_iterations: int | None = None,
    center: str = "none",
    seed: int = 0,
    reorthogonalize: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Truncated SVD via Lanczos bidiagonalization.

    Args:
        data: sparse or dense ``N x D`` input.
        n_components: number of singular triplets to return.
        n_iterations: Lanczos steps (defaults to ``2 * n_components + 10``,
            capped at ``min(N, D)``).
        center: ``"none"`` (plain SVD), ``"propagate"`` (mean-centered SVD
            via mean propagation, sparsity preserved) or ``"densify"``
            (explicit dense centering -- the naive approach).
        seed: seed for the starting vector.
        reorthogonalize: apply full reorthogonalization each step (needed in
            floating point for the Ritz values to be trustworthy).

    Returns:
        (U, s, Vt) truncated to *n_components*, singular values descending.
    """
    n_rows, n_cols = data.shape
    budget = min(n_rows, n_cols)
    if n_components < 1 or n_components > budget:
        raise ShapeError(
            f"n_components must be in [1, {budget}], got {n_components}"
        )
    if center not in ("none", "propagate", "densify"):
        raise ShapeError(f"unknown centering mode: {center!r}")

    if center == "densify":
        dense = np.asarray(data.todense()) if sp.issparse(data) else np.asarray(data)
        matvec, rmatvec = _plain_ops(dense - column_means(dense))
    elif center == "propagate":
        operator = CenteredOperator(data)
        matvec, rmatvec = operator.matvec, operator.rmatvec
    else:
        matvec, rmatvec = _plain_ops(data)

    steps = n_iterations or (2 * n_components + 10)
    steps = min(steps, budget)
    if steps < n_components:
        raise ShapeError(
            f"n_iterations={steps} is too small for {n_components} components"
        )

    rng = np.random.default_rng(seed)
    right_vectors = np.zeros((n_cols, steps))
    left_vectors = np.zeros((n_rows, steps))
    alphas = np.zeros(steps)
    betas = np.zeros(steps)

    vec = rng.normal(size=n_cols)
    vec /= np.linalg.norm(vec)
    previous_left = np.zeros(n_rows)
    beta = 0.0
    actual_steps = steps
    for j in range(steps):
        right_vectors[:, j] = vec
        left = matvec(vec) - beta * previous_left
        if reorthogonalize and j > 0:
            left -= left_vectors[:, :j] @ (left_vectors[:, :j].T @ left)
        alpha = np.linalg.norm(left)
        if alpha < 1e-12:
            actual_steps = j
            break
        left /= alpha
        left_vectors[:, j] = left
        alphas[j] = alpha

        vec = rmatvec(left) - alpha * vec
        if reorthogonalize:
            vec -= right_vectors[:, : j + 1] @ (right_vectors[:, : j + 1].T @ vec)
        beta = np.linalg.norm(vec)
        betas[j] = beta
        if beta < 1e-12:
            actual_steps = j + 1
            break
        vec /= beta
        previous_left = left

    if actual_steps < n_components:
        raise ConvergenceError(
            f"Lanczos terminated after {actual_steps} steps, fewer than the "
            f"{n_components} requested components"
        )

    # The recurrence gives A*V = U*B with B *upper* bidiagonal:
    # A v_j = beta_{j-1} u_{j-1} + alpha_j u_j, so B[j, j] = alpha_j and
    # B[j, j+1] = beta_j (from A' u_j = alpha_j v_j + beta_j v_{j+1}).
    bidiagonal = np.zeros((actual_steps, actual_steps))
    np.fill_diagonal(bidiagonal, alphas[:actual_steps])
    for j in range(actual_steps - 1):
        bidiagonal[j, j + 1] = betas[j]
    u_small, singular_values, vt_small = np.linalg.svd(bidiagonal)

    left_out = left_vectors[:, :actual_steps] @ u_small[:, :n_components]
    right_out = right_vectors[:, :actual_steps] @ vt_small[:n_components].T
    return left_out, singular_values[:n_components], right_out.T


def _plain_ops(data):
    def matvec(vec):
        return np.asarray(data @ vec).ravel()

    def rmatvec(vec):
        return np.asarray(data.T @ vec).ravel()

    return matvec, rmatvec


