"""Memory models: the driver heap and the executors' block manager."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DriverOutOfMemoryError, ShapeError
from repro.obs import get_tracer
from repro.obs.metrics import get_registry


class DriverMemoryMonitor:
    """Tracks driver-side allocations against a hard limit.

    The paper's Figure 8 measures the resident memory of the driver process:
    MLlib-PCA's grows as D^2 (it collects the covariance matrix to the
    driver) until it exceeds the machine's 32 GB and the job fails, while
    sPCA's stays flat at O(D*d).  Backends call :meth:`allocate` for every
    driver-side buffer they hold; exceeding the limit raises
    :class:`DriverOutOfMemoryError` -- the "Fail" entries of Table 2.
    """

    def __init__(self, limit_bytes: int):
        if limit_bytes <= 0:
            raise ShapeError(f"driver memory limit must be positive, got {limit_bytes}")
        self.limit_bytes = int(limit_bytes)
        self.used_bytes = 0
        self.peak_bytes = 0

    def allocate(self, nbytes: int, what: str = "buffer") -> None:
        """Claim *nbytes* of driver heap; raises when over the limit."""
        nbytes = int(nbytes)
        if nbytes < 0:
            # A negative allocation would silently drive used_bytes below
            # zero and mask later over-limit conditions; frees must go
            # through release().
            raise ShapeError(
                f"cannot allocate {nbytes} bytes for {what!r}; "
                "negative sizes must use release()"
            )
        if self.used_bytes + nbytes > self.limit_bytes:
            raise DriverOutOfMemoryError(
                requested_bytes=nbytes, limit_bytes=self.limit_bytes, what=what
            )
        self.used_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def release(self, nbytes: int) -> None:
        self.used_bytes = max(0, self.used_bytes - int(nbytes))

    def transient(self, nbytes: int, what: str = "result") -> None:
        """Model a short-lived allocation: counts towards the peak."""
        self.allocate(nbytes, what)
        self.release(nbytes)

    def reset(self) -> None:
        self.used_bytes = 0
        self.peak_bytes = 0


@dataclass
class _CachedPartition:
    data: list
    nbytes: int
    on_disk: bool = False


class BlockManager:
    """Executor-side cache for persisted RDD partitions.

    Partitions are stored in aggregate cluster memory until the configured
    limit; beyond it, newly cached partitions go to simulated disk (their
    reads are charged at disk bandwidth).  This mirrors Spark's
    MEMORY_AND_DISK behaviour and reproduces the paper's observation that
    "disk I/O is limited to the amount of data that does not fit in the
    aggregate memory of the cluster".
    """

    def __init__(self, limit_bytes: int):
        if limit_bytes <= 0:
            raise ShapeError(f"block manager limit must be positive, got {limit_bytes}")
        self.limit_bytes = int(limit_bytes)
        self.memory_bytes = 0
        self.disk_bytes = 0
        self._blocks: dict[tuple[int, int], _CachedPartition] = {}

    def put(self, rdd_id: int, split: int, data: list, nbytes: int) -> None:
        # Re-putting an existing block replaces it: release the old block's
        # accounting first, or memory/disk byte counts leak upward on every
        # overwrite and spill decisions drift.
        old = self._blocks.pop((rdd_id, split), None)
        if old is not None:
            if old.on_disk:
                self.disk_bytes -= old.nbytes
            else:
                self.memory_bytes -= old.nbytes
        on_disk = self.memory_bytes + nbytes > self.limit_bytes
        self._blocks[(rdd_id, split)] = _CachedPartition(data, nbytes, on_disk)
        if on_disk:
            self.disk_bytes += nbytes
        else:
            self.memory_bytes += nbytes
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "cache_put", rdd_id=rdd_id, split=split, bytes=nbytes, on_disk=on_disk
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("spca_cache_puts_total").inc()
            registry.counter("spca_cache_put_bytes_total").inc(nbytes)
            if on_disk:
                registry.counter("spca_cache_disk_puts_total").inc()

    def get(self, rdd_id: int, split: int) -> _CachedPartition | None:
        return self._blocks.get((rdd_id, split))

    def evict(self, rdd_id: int) -> None:
        """Drop every cached partition of one RDD (``unpersist``)."""
        self.evict_matching(lambda key: key[0] == rdd_id)

    def evict_matching(self, predicate) -> list[tuple[tuple[int, int], int, bool]]:
        """Drop every cached partition whose ``(rdd_id, split)`` key matches.

        Used by ``unpersist`` and by executor-loss fault injection (every
        block hosted on the lost executor disappears at once).  Returns the
        evicted ``(key, nbytes, on_disk)`` triples so the caller can mark
        them for lineage recomputation.
        """
        tracer = get_tracer()
        registry = get_registry()
        evicted = []
        for key in [key for key in self._blocks if predicate(key)]:
            block = self._blocks.pop(key)
            if block.on_disk:
                self.disk_bytes -= block.nbytes
            else:
                self.memory_bytes -= block.nbytes
            evicted.append((key, block.nbytes, block.on_disk))
            if tracer.enabled:
                tracer.event(
                    "cache_evict",
                    rdd_id=key[0],
                    split=key[1],
                    bytes=block.nbytes,
                    on_disk=block.on_disk,
                )
            if registry.enabled:
                registry.counter("spca_cache_evictions_total").inc()
                registry.counter("spca_cache_evicted_bytes_total").inc(block.nbytes)
        return evicted

    @property
    def cached_bytes(self) -> int:
        return self.memory_bytes + self.disk_bytes
