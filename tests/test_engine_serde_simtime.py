"""Byte accounting and the simulated-time model."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import CostModel, schedule_makespan, schedule_tasks
from repro.engine.cluster import ClusterSpec
from repro.engine.serde import sizeof, sizeof_pairs
from repro.errors import ShapeError


class TestSizeof:
    def test_numpy_array_counts_buffer(self):
        array = np.zeros((10, 10))
        assert sizeof(array) >= array.nbytes

    def test_sparse_counts_index_structures(self):
        matrix = sp.random(50, 50, density=0.1, random_state=0, format="csr")
        expected = matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        assert sizeof(matrix) >= expected

    def test_scalars_and_none(self):
        assert sizeof(3) == 8
        assert sizeof(3.5) == 8
        assert sizeof(True) == 8
        assert sizeof(None) == 1

    def test_strings(self):
        assert sizeof("abcd") >= 4

    def test_containers_are_additive(self):
        a, b = np.zeros(4), np.zeros(6)
        assert sizeof([a, b]) >= sizeof(a) + sizeof(b)
        assert sizeof({"x": a}) >= sizeof("x") + sizeof(a)

    def test_sizeof_pairs(self):
        pairs = [("k1", np.zeros(8)), ("k2", 1.0)]
        assert sizeof_pairs(pairs) == sizeof("k1") + sizeof(np.zeros(8)) + sizeof("k2") + 8

    def test_fallback_repr(self):
        class Odd:
            def __repr__(self):
                return "x" * 50

        assert sizeof(Odd()) >= 50

    def test_sparse_csr_measured_without_conversion(self):
        matrix = sp.random(40, 60, density=0.15, random_state=1, format="csr")
        expected = (
            matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        )
        assert sizeof(matrix) == expected + 8  # + container overhead

    @pytest.mark.parametrize("fmt", ["csc", "coo", "lil", "dok"])
    def test_sparse_formats_match_csr_equivalent(self, fmt):
        # The historical implementation measured every sparse matrix through
        # tocsr(); the direct computation must reproduce those numbers.
        matrix = sp.random(40, 60, density=0.15, random_state=2, format=fmt)
        as_csr = matrix.tocsr()
        expected = as_csr.data.nbytes + as_csr.indices.nbytes + as_csr.indptr.nbytes
        assert sizeof(matrix) == expected + 8

    def test_empty_sparse(self):
        matrix = sp.csr_matrix((5, 7))
        assert sizeof(matrix) == matrix.indptr.nbytes + 8


class TestSizeofMemoization:
    def test_repeat_measurement_hits_cache(self):
        from repro.engine.serde import clear_sizeof_cache, sizeof_cache_entries

        clear_sizeof_cache()
        array = np.ones((16, 16))
        first = sizeof(array)
        assert sizeof_cache_entries() == 1
        assert sizeof(array) == first
        assert sizeof_cache_entries() == 1

    def test_distinct_objects_get_distinct_entries(self):
        from repro.engine.serde import clear_sizeof_cache, sizeof_cache_entries

        clear_sizeof_cache()
        a, b = np.zeros(4), np.zeros(4)
        sizeof(a)
        sizeof(b)
        assert sizeof_cache_entries() == 2

    def test_entry_evicted_when_object_collected(self):
        import gc

        from repro.engine.serde import clear_sizeof_cache, sizeof_cache_entries

        clear_sizeof_cache()
        array = np.zeros(128)
        sizeof(array)
        assert sizeof_cache_entries() == 1
        del array
        gc.collect()
        # The weakref death callback must have dropped the entry, so a new
        # object recycling the id() can never alias the stale size.
        assert sizeof_cache_entries() == 0

    def test_sparse_values_are_memoized_too(self):
        from repro.engine.serde import clear_sizeof_cache, sizeof_cache_entries

        clear_sizeof_cache()
        matrix = sp.random(30, 30, density=0.2, random_state=3, format="csr")
        first = sizeof(matrix)
        assert sizeof(matrix) == first
        assert sizeof_cache_entries() == 1


class TestScheduleMakespan:
    def test_single_slot_is_sum(self):
        assert schedule_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_slots_is_max(self):
        assert schedule_makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_empty_tasks(self):
        assert schedule_makespan([], 4) == 0.0

    def test_invalid_slots(self):
        with pytest.raises(ShapeError):
            schedule_makespan([1.0], 0)

    @settings(max_examples=40, deadline=None)
    @given(
        tasks=st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=20),
        slots=st.integers(min_value=1, max_value=8),
    )
    def test_property_bounds(self, tasks, slots):
        makespan = schedule_makespan(tasks, slots)
        total = sum(tasks)
        longest = max(tasks, default=0.0)
        # Lower bounds: perfect parallelism and the longest single task.
        assert makespan >= total / slots - 1e-9
        assert makespan >= longest - 1e-9
        # Upper bound: serial execution.
        assert makespan <= total + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        tasks=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=15),
        slots=st.integers(min_value=1, max_value=4),
    )
    def test_property_more_slots_never_slower(self, tasks, slots):
        assert schedule_makespan(tasks, slots + 1) <= schedule_makespan(tasks, slots) + 1e-9


class TestScheduleTasks:
    def test_placements_cover_all_tasks_in_id_order(self):
        placements = schedule_tasks([2.0, 1.0, 3.0], 2)
        assert [p.task_id for p in placements] == [0, 1, 2]
        assert sorted(p.duration for p in placements) == [1.0, 2.0, 3.0]

    def test_no_overlap_within_a_slot(self):
        placements = schedule_tasks([1.0, 2.0, 3.0, 4.0, 5.0], 2)
        by_slot: dict = {}
        for p in placements:
            by_slot.setdefault(p.slot, []).append(p)
        for slot_tasks in by_slot.values():
            slot_tasks.sort(key=lambda p: p.start)
            for earlier, later in zip(slot_tasks, slot_tasks[1:]):
                assert later.start >= earlier.end - 1e-12

    def test_makespan_agrees_with_schedule(self):
        tasks = [1.0, 2.0, 3.0, 4.0]
        placements = schedule_tasks(tasks, 2)
        assert schedule_makespan(tasks, 2) == max(p.end for p in placements)

    def test_empty_tasks_empty_schedule(self):
        assert schedule_tasks([], 4) == []

    def test_zero_slots_is_error_even_for_empty_list(self):
        with pytest.raises(ShapeError):
            schedule_tasks([], 0)
        with pytest.raises(ShapeError):
            schedule_tasks([1.0], 0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_rejects_non_finite_and_negative_durations(self, bad):
        with pytest.raises(ShapeError) as excinfo:
            schedule_tasks([1.0, bad], 2)
        assert "#1" in str(excinfo.value)

    def test_speculative_execution_rejects_bad_durations(self):
        from repro.engine.simtime import apply_speculative_execution

        with pytest.raises(ShapeError):
            apply_speculative_execution([1.0, float("nan"), 2.0])
        with pytest.raises(ShapeError):
            apply_speculative_execution([-0.5, 1.0, 2.0])

    @settings(max_examples=40, deadline=None)
    @given(
        tasks=st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=20),
        slots=st.integers(min_value=1, max_value=8),
    )
    def test_property_slots_within_bounds(self, tasks, slots):
        placements = schedule_tasks(tasks, slots)
        assert len(placements) == len(tasks)
        for p in placements:
            assert 0 <= p.slot < slots
            assert p.start >= 0.0


class TestCostModel:
    def test_transfer_times(self):
        cost = CostModel(1.0, 0.1, network_bytes_per_s=100.0, disk_bytes_per_s=50.0)
        assert cost.network_seconds(200) == pytest.approx(2.0)
        assert cost.disk_seconds(200) == pytest.approx(4.0)


class TestClusterSpec:
    def test_defaults_match_paper_testbed(self):
        cluster = ClusterSpec()
        assert cluster.num_nodes == 8
        assert cluster.cores_per_node == 8
        assert cluster.total_cores == 64

    def test_scaled(self):
        cluster = ClusterSpec().scaled(2)
        assert cluster.total_cores == 16
        assert cluster.memory_per_node_mb == ClusterSpec().memory_per_node_mb

    def test_validation(self):
        with pytest.raises(ShapeError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(ShapeError):
            ClusterSpec(driver_memory_mb=0)

    def test_scaled_rejects_non_positive_node_counts(self):
        for bad in (0, -3):
            with pytest.raises(ShapeError) as excinfo:
                ClusterSpec().scaled(bad)
            assert "num_nodes >= 1" in str(excinfo.value)

    def test_memory_bytes(self):
        cluster = ClusterSpec(num_nodes=2, memory_per_node_mb=1.0, driver_memory_mb=2.0)
        assert cluster.aggregate_memory_bytes == 2 * 1024 * 1024
        assert cluster.driver_memory_bytes == 2 * 1024 * 1024


class TestSpeculativeExecution:
    def test_caps_stragglers(self):
        from repro.engine.simtime import apply_speculative_execution

        smoothed = apply_speculative_execution([1.0, 1.0, 1.0, 100.0])
        assert max(smoothed) == pytest.approx(3.0)

    def test_leaves_balanced_stages_alone(self):
        from repro.engine.simtime import apply_speculative_execution

        times = [1.0, 1.1, 0.9, 1.05]
        assert apply_speculative_execution(times) == times

    def test_tiny_stages_passthrough(self):
        from repro.engine.simtime import apply_speculative_execution

        assert apply_speculative_execution([5.0]) == [5.0]
        assert apply_speculative_execution([5.0, 1.0]) == [5.0, 1.0]

    def test_invalid_factor(self):
        from repro.engine.simtime import apply_speculative_execution

        with pytest.raises(ShapeError):
            apply_speculative_execution([1.0, 2.0, 3.0], straggler_factor=1.0)

    def test_even_length_uses_true_median(self):
        from repro.engine.simtime import apply_speculative_execution

        # sorted = [1, 1, 3, 100]: the true median is (1 + 3) / 2 = 2, so the
        # cap is 6.0.  The old upper-middle "median" took 3.0 (a value the
        # straggler side contributes), inflating the cap to 9.0.
        smoothed = apply_speculative_execution([1.0, 3.0, 1.0, 100.0])
        assert smoothed == [1.0, 3.0, 1.0, pytest.approx(6.0)]

    def test_straggler_cannot_inflate_its_own_cap(self):
        from repro.engine.simtime import apply_speculative_execution

        # The cap must come from the middle of the distribution, not from a
        # single upper-middle element the straggler side contributes.
        smoothed = apply_speculative_execution([1.0, 2.0, 50.0, 500.0])
        ceiling = 3.0 * 0.5 * (2.0 + 50.0)
        assert smoothed == [1.0, 2.0, 50.0, pytest.approx(ceiling)]

    def test_empty_stage_passthrough(self):
        from repro.engine.simtime import apply_speculative_execution

        assert apply_speculative_execution([]) == []
