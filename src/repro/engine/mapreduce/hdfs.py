"""An in-memory stand-in for HDFS with byte accounting.

Stores datasets as lists of (key, value) records under string paths.  Every
read and write is charged at its serialized size so the engine can model the
disk traffic that distinguishes the disk-based MapReduce platform from the
memory-based Spark platform.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.engine.serde import sizeof_pairs
from repro.errors import FileSystemError

Pair = tuple[Any, Any]


class InMemoryHDFS:
    """A flat namespace of record datasets.

    Attributes:
        replication: HDFS-style replication factor; writes are charged
            ``replication`` times (default 1 keeps byte counts equal to the
            logical data size, which is how the paper reports them).
    """

    def __init__(self, replication: int = 1):
        if replication < 1:
            raise FileSystemError(f"replication must be >= 1, got {replication}")
        self.replication = replication
        self._files: dict[str, list[Pair]] = {}
        self._sizes: dict[str, int] = {}
        self.bytes_read = 0
        self.bytes_written = 0

    def write(self, path: str, records: Iterable[Pair], overwrite: bool = True) -> int:
        """Store *records* under *path*; returns the logical byte size."""
        if not overwrite and path in self._files:
            raise FileSystemError(f"path already exists: {path}")
        materialized = list(records)
        nbytes = sizeof_pairs(materialized)
        self._files[path] = materialized
        self._sizes[path] = nbytes
        self.bytes_written += nbytes * self.replication
        return nbytes

    def read(self, path: str) -> list[Pair]:
        """Return the records under *path*, charging a full read."""
        if path not in self._files:
            raise FileSystemError(f"no such path: {path}")
        self.bytes_read += self._sizes[path]
        return self._files[path]

    def size(self, path: str) -> int:
        """Logical size of *path* in bytes (no read charge)."""
        if path not in self._sizes:
            raise FileSystemError(f"no such path: {path}")
        return self._sizes[path]

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise FileSystemError(f"no such path: {path}")
        del self._files[path]
        del self._sizes[path]

    def listing(self) -> dict[str, int]:
        """Map of path -> size for everything currently stored."""
        return dict(self._sizes)

    @property
    def total_stored_bytes(self) -> int:
        return sum(self._sizes.values())
