"""Inference-path hardening: degenerate models, cached projectors, 1-D latents.

Covers the serving-readiness bugfixes:

- ``transform`` no longer inverts ``C'C + ss*I`` directly, so models with
  ``noise_variance ~ 0`` *and* rank-deficient components (both legitimately
  produced by EM on degenerate data) transform instead of crashing with
  ``LinAlgError``.
- The D x d projector is computed once and cached on the model, like
  ``_basis``.
- ``inverse_transform`` accepts a single 1-D latent vector.

Every degenerate shape also goes through a full save -> load -> transform /
reconstruct round-trip, because serving loads models from disk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import PCAModel
from repro.core.persistence import load_model, save_model
from repro.errors import ShapeError


def _model(components, noise_variance=0.1, mean=None):
    components = np.asarray(components, dtype=np.float64)
    if mean is None:
        mean = np.zeros(components.shape[0])
    return PCAModel(
        components=components,
        mean=mean,
        noise_variance=noise_variance,
        n_samples=100,
    )


def _rank_deficient_model(noise_variance):
    # Two identical columns: C'C is singular; with ss = 0 the posterior
    # moment matrix C'C + ss*I is exactly singular too.
    column = np.array([1.0, 2.0, 3.0, 4.0])
    return _model(
        np.column_stack([column, column]), noise_variance=noise_variance
    )


class TestDegenerateTransform:
    def test_zero_noise_rank_deficient_does_not_crash(self):
        model = _rank_deficient_model(noise_variance=0.0)
        data = np.arange(8.0).reshape(2, 4)
        latent = model.transform(data)
        assert latent.shape == (2, 2)
        assert np.all(np.isfinite(latent))

    def test_zero_noise_rank_deficient_reconstruction_is_projection(self):
        # With the pinv fallback the reconstruction must still land in the
        # column space of C and be no worse than the data's projection.
        model = _rank_deficient_model(noise_variance=0.0)
        data = np.outer([1.0, -2.0], model.components[:, 0])
        reconstructed = model.inverse_transform(model.transform(data))
        assert np.allclose(reconstructed, data, atol=1e-8)

    def test_full_rank_matches_solve_reference(self):
        rng = np.random.default_rng(0)
        components = rng.normal(size=(6, 3))
        model = _model(components, noise_variance=0.3)
        data = rng.normal(size=(5, 6))
        moment = components.T @ components + 0.3 * np.eye(3)
        expected = np.linalg.solve(moment, components.T @ data.T).T
        assert np.allclose(model.transform(data), expected)

    def test_tiny_noise_rank_deficient(self):
        model = _rank_deficient_model(noise_variance=1e-300)
        latent = model.transform(np.ones((3, 4)))
        assert np.all(np.isfinite(latent))


class TestProjectorCaching:
    def test_posterior_projector_cached(self):
        model = _model(np.eye(4)[:, :2])
        first = model.posterior_projector
        assert model.posterior_projector is first

    def test_subspace_projector_cached(self):
        model = _model(np.eye(4)[:, :2])
        first = model.subspace_projector
        assert model.subspace_projector is first

    def test_transform_uses_cached_projector(self):
        model = _model(np.eye(4)[:, :2], noise_variance=0.25)
        data = np.arange(12.0).reshape(3, 4)
        expected = model.transform(data)
        assert np.array_equal(model.transform(data), expected)


class TestInverseTransform1D:
    def test_1d_latent_round_trips(self):
        rng = np.random.default_rng(1)
        model = _model(rng.normal(size=(5, 2)), mean=rng.normal(size=5))
        latent = np.array([0.5, -1.5])
        result = model.inverse_transform(latent)
        assert result.shape == (5,)
        expected = model.inverse_transform(latent[None, :])
        assert np.array_equal(result, expected[0])

    def test_2d_latents_unchanged(self):
        model = _model(np.eye(4)[:, :2])
        latents = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert model.inverse_transform(latents).shape == (2, 4)

    def test_1d_dimension_mismatch_raises(self):
        model = _model(np.eye(4)[:, :2])
        with pytest.raises(ShapeError):
            model.inverse_transform(np.array([1.0, 2.0, 3.0]))

    def test_3d_latent_raises(self):
        model = _model(np.eye(4)[:, :2])
        with pytest.raises(ShapeError):
            model.inverse_transform(np.ones((2, 2, 2)))


@pytest.mark.parametrize(
    "components, noise_variance",
    [
        (np.array([[1.0], [2.0], [0.5]]), 0.1),  # d = 1
        (np.zeros((4, 2)), 0.5),  # zero-variance loadings
        (np.column_stack([np.ones(4), np.ones(4)]), 0.0),  # ss = 0, singular
    ],
    ids=["d1", "zero-variance", "zero-noise-singular"],
)
def test_degenerate_round_trip_through_disk(tmp_path, components, noise_variance):
    model = _model(components, noise_variance=noise_variance)
    path = save_model(model, tmp_path / "model.npz")
    loaded = load_model(path)

    data = np.arange(2.0 * model.n_features).reshape(2, model.n_features)
    latent = loaded.transform(data)
    assert latent.shape == (2, model.n_components)
    assert np.all(np.isfinite(latent))
    assert np.array_equal(latent, model.transform(data))

    reconstructed = loaded.inverse_transform(latent)
    assert reconstructed.shape == data.shape
    assert np.all(np.isfinite(reconstructed))

    single = loaded.inverse_transform(latent[0])
    assert np.array_equal(single, reconstructed[0])
