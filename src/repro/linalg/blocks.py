"""Row-partitioned matrix blocks.

Both simulated engines distribute the input matrix ``Y`` row-wise, exactly as
HDFS splits and Spark partitions do in the paper's implementations.  A
:class:`RowBlock` is the record type that flows through mappers and RDD
partitions: a contiguous range of rows held either as a ``scipy.sparse``
CSR matrix (the sparse datasets: Tweets, Bio-Text) or as a dense
``numpy.ndarray`` (the dense datasets: Diabetes, Images).

Keeping blocks -- rather than individual rows -- as the distribution unit lets
the simulated workers use vectorized NumPy/SciPy kernels while preserving the
paper's dataflow (what is shuffled, what is broadcast, what is materialized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError

Matrix = Union[np.ndarray, sp.spmatrix]


def is_sparse(matrix: Matrix) -> bool:
    """Return True when *matrix* is a scipy sparse matrix."""
    return sp.issparse(matrix)


@dataclass(frozen=True)
class RowBlock:
    """A contiguous horizontal slice of a distributed matrix.

    Attributes:
        start: global index of the first row in this block.
        data: the rows themselves, CSR or dense, shape ``(n_rows, D)``.
    """

    start: int
    data: Matrix

    @property
    def n_rows(self) -> int:
        return self.data.shape[0]

    @property
    def n_cols(self) -> int:
        return self.data.shape[1]

    @property
    def stop(self) -> int:
        return self.start + self.n_rows

    @property
    def is_sparse(self) -> bool:
        return is_sparse(self.data)

    def nbytes(self) -> int:
        """Serialized size of the block payload in bytes."""
        return block_nbytes(self.data)

    def densified(self) -> "RowBlock":
        """Return a dense copy of this block (used by ablation paths)."""
        if self.is_sparse:
            return RowBlock(self.start, np.asarray(self.data.todense()))
        return self


def block_nbytes(matrix: Matrix) -> int:
    """Bytes needed to serialize *matrix* (data + sparse index structures)."""
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        return int(csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes)
    return int(np.asarray(matrix).nbytes)


def partition_rows(matrix: Matrix, num_partitions: int) -> list[RowBlock]:
    """Split *matrix* into ``num_partitions`` near-equal row blocks.

    The split mirrors how HDFS splits a row-major file: blocks are contiguous
    and sizes differ by at most one row.

    Raises:
        ShapeError: if the matrix has no rows or ``num_partitions < 1``.
    """
    if num_partitions < 1:
        raise ShapeError(f"num_partitions must be >= 1, got {num_partitions}")
    n_rows = matrix.shape[0]
    if n_rows == 0:
        raise ShapeError("cannot partition a matrix with zero rows")
    num_partitions = min(num_partitions, n_rows)
    boundaries = np.linspace(0, n_rows, num_partitions + 1, dtype=int)
    blocks = []
    sparse = sp.issparse(matrix)
    csr = matrix.tocsr() if sparse else np.asarray(matrix)
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        if hi > lo:
            blocks.append(RowBlock(int(lo), csr[lo:hi]))
    return blocks


def iter_blocks(blocks: Sequence[RowBlock]) -> Iterator[RowBlock]:
    """Iterate blocks in global row order regardless of input order."""
    return iter(sorted(blocks, key=lambda block: block.start))


def stack_blocks(blocks: Sequence[RowBlock]) -> Matrix:
    """Reassemble row blocks into a single matrix (inverse of partition_rows).

    Raises:
        ShapeError: if the blocks do not tile a contiguous row range.
    """
    ordered = list(iter_blocks(blocks))
    if not ordered:
        raise ShapeError("cannot stack an empty block list")
    expected = ordered[0].start
    for block in ordered:
        if block.start != expected:
            raise ShapeError(
                f"blocks are not contiguous: expected row {expected}, got {block.start}"
            )
        expected = block.stop
    if any(block.is_sparse for block in ordered):
        return sp.vstack([sp.csr_matrix(block.data) for block in ordered]).tocsr()
    return np.vstack([np.asarray(block.data) for block in ordered])
