"""Dynamic combiner-algebra verification (the runtime half of DF002).

A MapReduce combiner or Spark accumulator merge function is only correct if
it is a commutative monoid operation: the platform combines partials in an
order determined by scheduling, retries, and speculative execution.  DF002
catches syntactically obvious violations; this module *dynamically* confirms
commutativity and associativity for every registered combiner on sampled
operands (the tests drive it with hypothesis-generated matrices).

Floating-point addition is only associative up to rounding, which is exactly
the tolerance the paper's partial-sum algebra itself assumes, so checks
compare with a relative tolerance rather than bit equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np
import scipy.sparse as sp

from repro.errors import CombinerAlgebraError

CombineFn = Callable[[Any, Any], Any]


@dataclass(frozen=True)
class CombinerSpec:
    """One registered combiner: a named binary merge operation."""

    name: str
    fn: CombineFn
    description: str = ""


REGISTRY: dict[str, CombinerSpec] = {}


def register_combiner(name: str, fn: CombineFn, description: str = "") -> CombinerSpec:
    """Register *fn* for algebraic verification; returns the spec."""
    spec = CombinerSpec(name=name, fn=fn, description=description)
    REGISTRY[name] = spec
    return spec


def registered_combiners() -> dict[str, CombinerSpec]:
    """All registered combiners, including the engine built-ins."""
    _register_builtins()
    return dict(REGISTRY)


_builtins_registered = False


def _register_builtins() -> None:
    """Register the combiners the engines actually use.

    Imported lazily so that importing :mod:`repro.lint` never drags the
    backends in (and vice versa).
    """
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    register_combiner(
        "sum",
        lambda a, b: a + b,
        "MatrixSumReducer / SumReducer / default accumulator add-op: plain "
        "addition of numbers and numpy arrays",
    )
    from repro.backends.spark import _add_maybe_sparse

    register_combiner(
        "add-maybe-sparse",
        _add_maybe_sparse,
        "Spark YtX accumulator add-op accepting dense or sparse updates "
        "(the O(z*d) sparse-partial optimization of Section 4.2)",
    )
    from collections import Counter

    register_combiner(
        "counter-merge",
        lambda a, b: a + b,
        "TaskContext counter merging in the MapReduce runtime",
    )
    _ = Counter  # imported for documentation symmetry with the runtime


def _as_dense(value: Any) -> Any:
    if sp.issparse(value):
        return np.asarray(value.todense())
    return value


def _approx_equal(left: Any, right: Any, rtol: float, atol: float) -> bool:
    left, right = _as_dense(left), _as_dense(right)
    try:
        return bool(np.allclose(left, right, rtol=rtol, atol=atol))
    except TypeError:
        return bool(left == right)


def check_commutative(
    fn: CombineFn, a: Any, b: Any, rtol: float = 1e-9, atol: float = 1e-12
) -> None:
    """Raise :class:`CombinerAlgebraError` unless ``fn(a, b) == fn(b, a)``."""
    forward, backward = fn(a, b), fn(b, a)
    if not _approx_equal(forward, backward, rtol, atol):
        raise CombinerAlgebraError(
            f"combiner is not commutative: fn(a, b) != fn(b, a) "
            f"(|a|={np.shape(_as_dense(a))}, |b|={np.shape(_as_dense(b))})"
        )


def check_associative(
    fn: CombineFn, a: Any, b: Any, c: Any, rtol: float = 1e-9, atol: float = 1e-12
) -> None:
    """Raise unless ``fn(fn(a, b), c) == fn(a, fn(b, c))`` (to tolerance)."""
    left = fn(fn(a, b), c)
    right = fn(a, fn(b, c))
    if not _approx_equal(left, right, rtol, atol):
        raise CombinerAlgebraError(
            "combiner is not associative: fn(fn(a, b), c) != fn(a, fn(b, c))"
        )


def verify_combiner(
    spec: CombinerSpec,
    operand_triples: Iterable[tuple[Any, Any, Any]],
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> int:
    """Check commutativity + associativity of *spec* over sample operands.

    Returns the number of triples checked; raises
    :class:`CombinerAlgebraError` (tagged with the combiner's name) on the
    first failing algebraic identity.
    """
    checked = 0
    for a, b, c in operand_triples:
        try:
            check_commutative(spec.fn, a, b, rtol=rtol, atol=atol)
            check_associative(spec.fn, a, b, c, rtol=rtol, atol=atol)
        except CombinerAlgebraError as exc:
            raise CombinerAlgebraError(f"combiner {spec.name!r}: {exc}") from None
        checked += 1
    return checked
