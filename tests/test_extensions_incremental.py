"""Incremental (mini-batch / streaming) PPCA."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backends import SequentialBackend
from repro.core import SPCA, SPCAConfig
from repro.data.generators import lowrank_dense
from repro.errors import ShapeError
from repro.extensions import IncrementalPPCA
from repro.extensions.incremental import (
    initial_sem_state,
    sem_batch_statistics,
    sem_blend,
    sem_step,
)
from repro.linalg.centered import centered_times
from repro.linalg.stats import column_means
from repro.metrics import subspace_angle_degrees


def lowrank(n, d_cols, rank, noise, seed):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(n, rank)) * np.sqrt(np.arange(rank, 0, -1))
    loadings = rng.normal(size=(rank, d_cols))
    return factors @ loadings + noise * rng.normal(size=(n, d_cols)) + rng.normal(size=d_cols)


def exact_basis(data, k):
    centered = data - data.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return vt[:k].T


def assert_models_bitwise(a, b):
    assert np.array_equal(a.components, b.components)
    assert np.array_equal(a.mean, b.mean)
    assert a.noise_variance == b.noise_variance
    assert a.n_samples == b.n_samples


class TestMiniBatchFit:
    def test_recovers_subspace(self):
        data = lowrank(2000, 25, 4, 0.05, seed=1)
        model = IncrementalPPCA(4, batch_size=200, n_epochs=8, seed=2).fit(data)
        assert subspace_angle_degrees(model.basis, exact_basis(data, 4)) < 5.0

    def test_sparse_input(self):
        matrix = sp.random(1500, 40, density=0.2, random_state=3, format="csr")
        model = IncrementalPPCA(3, batch_size=128, n_epochs=6, seed=4).fit(matrix)
        assert model.components.shape == (40, 3)
        assert np.isfinite(model.noise_variance)

    def test_more_epochs_improve_subspace(self):
        data = lowrank(1500, 20, 3, 0.05, seed=5)
        exact = exact_basis(data, 3)
        short = IncrementalPPCA(3, batch_size=150, n_epochs=1, seed=6).fit(data)
        long = IncrementalPPCA(3, batch_size=150, n_epochs=12, seed=6).fit(data)
        assert subspace_angle_degrees(long.basis, exact) < subspace_angle_degrees(
            short.basis, exact
        ) + 0.5

    def test_noise_variance_sensible(self):
        data = lowrank(2000, 15, 3, 0.3, seed=7)
        model = IncrementalPPCA(3, batch_size=250, n_epochs=10, seed=8).fit(data)
        centered = data - data.mean(axis=0)
        eigenvalues = np.linalg.svd(centered, compute_uv=False) ** 2 / 2000
        expected = eigenvalues[3:].mean()
        assert model.noise_variance == pytest.approx(expected, rel=0.5)

    def test_validation(self):
        data = lowrank(100, 10, 2, 0.1, seed=9)
        with pytest.raises(ShapeError):
            IncrementalPPCA(20).fit(data)
        with pytest.raises(ShapeError):
            IncrementalPPCA(2, batch_size=0).fit(data)
        with pytest.raises(ShapeError):
            IncrementalPPCA(2, step_decay=0.3).fit(data)


class TestStreamingFit:
    def test_stream_of_batches(self):
        data = lowrank(2400, 20, 3, 0.05, seed=10)
        batches = [data[i : i + 200] for i in range(0, 2400, 200)]
        # Several passes over the stream improve the estimate.
        algorithm = IncrementalPPCA(3, seed=11, n_epochs=1)
        model = algorithm.partial_fit_stream(batches * 6, n_cols=20)
        assert subspace_angle_degrees(model.basis, exact_basis(data, 3)) < 10.0
        assert model.n_samples == 2400 * 6

    def test_stream_mean_estimated_online(self):
        data = lowrank(1000, 12, 2, 0.05, seed=12)
        batches = [data[i : i + 100] for i in range(0, 1000, 100)]
        model = IncrementalPPCA(2, seed=13).partial_fit_stream(batches, n_cols=12)
        np.testing.assert_allclose(model.mean, data.mean(axis=0), atol=1e-8)

    def test_stream_validation(self):
        algorithm = IncrementalPPCA(2, seed=14)
        with pytest.raises(ShapeError):
            algorithm.partial_fit_stream([], n_cols=5)
        with pytest.raises(ShapeError):
            algorithm.partial_fit_stream([np.ones((4, 3))], n_cols=5)


class TestResidualPaths:
    """The dense and trace residual-variance paths are the same estimator."""

    @staticmethod
    def _state_and_batch(sparse=False):
        data = lowrank(300, 24, 3, 0.1, seed=20)
        if sparse:
            data = sp.csr_matrix(np.where(np.abs(data) > 1.0, data, 0.0))
        state = initial_sem_state(3, 24, seed=21, mean=column_means(data))
        # Advance one step so the running moments are populated.
        state = sem_step(state, data[:100], step_decay=0.7, update_mean=False)
        return state, data[100:200]

    @pytest.mark.parametrize("sparse", [False, True])
    def test_dense_and_trace_batch_ss_agree(self, sparse):
        state, batch = self._state_and_batch(sparse)
        dense = sem_blend(
            state,
            sem_batch_statistics(batch, state, update_mean=False, residual="dense"),
            step_decay=0.7,
        )
        trace = sem_blend(
            state,
            sem_batch_statistics(batch, state, update_mean=False, residual="trace"),
            step_decay=0.7,
        )
        # Same moments either way; the residual estimate agrees to float
        # tolerance (the two paths sum the same quantity in different orders).
        assert np.array_equal(dense.components, trace.components)
        assert trace.noise_variance == pytest.approx(
            dense.noise_variance, rel=1e-9
        )

    @pytest.mark.parametrize("sparse", [False, True])
    def test_direct_centering_matches_identity_product(self, sparse):
        # Regression for the old dense path, which routed centering through
        # centered_times(batch, mean, eye(D)): the direct subtraction must
        # reproduce it bit for bit.
        state, batch = self._state_and_batch(sparse)
        stats = sem_batch_statistics(
            batch, state, update_mean=False, residual="dense"
        )
        via_identity = centered_times(batch, state.mean, np.eye(batch.shape[1]))
        assert np.array_equal(stats.residual, via_identity)

    def test_fit_residual_modes_agree(self):
        # Within one batch the paths agree to reduction-order noise; over a
        # whole fit the ulp-level ss differences feed back through later
        # batches, so the comparison is tight-tolerance, not bitwise.
        data = lowrank(600, 18, 3, 0.1, seed=22)
        dense = IncrementalPPCA(3, batch_size=120, seed=23, residual="dense").fit(data)
        trace = IncrementalPPCA(3, batch_size=120, seed=23, residual="trace").fit(data)
        assert subspace_angle_degrees(dense.basis, trace.basis) < 1e-4
        assert trace.noise_variance == pytest.approx(dense.noise_variance, rel=1e-6)

    def test_bad_residual_mode_rejected(self):
        with pytest.raises(ShapeError):
            IncrementalPPCA(2, residual="exact").fit(lowrank(50, 8, 2, 0.1, seed=24))


class TestUnifiedStep:
    """fit and partial_fit_stream drive the same shared sEM step."""

    def test_entry_points_produce_identical_models(self):
        data = lowrank(500, 16, 3, 0.1, seed=30)
        batch_size = 90
        fitted = IncrementalPPCA(
            3, batch_size=batch_size, n_epochs=1, seed=31,
            shuffle=False, residual="trace",
        ).fit(data)
        batches = [data[i : i + batch_size] for i in range(0, 500, batch_size)]
        streamed = IncrementalPPCA(3, seed=31).partial_fit_stream(
            batches, n_cols=16, mean=column_means(data)
        )
        assert_models_bitwise(fitted, streamed)

    def test_entry_points_match_across_epochs(self):
        data = lowrank(240, 10, 2, 0.1, seed=32)
        fitted = IncrementalPPCA(
            2, batch_size=60, n_epochs=3, seed=33, shuffle=False, residual="trace"
        ).fit(data)
        batches = [data[i : i + 60] for i in range(0, 240, 60)] * 3
        streamed = IncrementalPPCA(2, seed=33).partial_fit_stream(
            batches, n_cols=10, mean=column_means(data)
        )
        assert np.array_equal(fitted.components, streamed.components)
        assert np.array_equal(fitted.mean, streamed.mean)
        assert fitted.noise_variance == streamed.noise_variance
        # fit reports the dataset size; the stream reports rows consumed.
        assert fitted.n_samples == 240
        assert streamed.n_samples == 720

    def test_sem_step_composes_statistics_and_blend(self):
        data = lowrank(200, 12, 2, 0.1, seed=34)
        state = initial_sem_state(2, 12, seed=35)
        stepped = sem_step(state, data[:80], step_decay=0.7)
        stats = sem_batch_statistics(data[:80], state, update_mean=True)
        blended = sem_blend(state, stats, step_decay=0.7)
        assert np.array_equal(stepped.components, blended.components)
        assert stepped.noise_variance == blended.noise_variance
        assert stepped.rows_seen == blended.rows_seen == 80

    def test_statistics_payload_roundtrip(self):
        data = lowrank(150, 9, 2, 0.1, seed=36)
        state = initial_sem_state(2, 9, seed=37)
        stats = sem_batch_statistics(data, state, update_mean=True)
        restored = type(stats).from_payload(stats.as_payload())
        a = sem_blend(state, stats, step_decay=0.7)
        b = sem_blend(state, restored, step_decay=0.7)
        assert np.array_equal(a.components, b.components)
        assert a.noise_variance == b.noise_variance

    def test_dense_statistics_cannot_ship(self):
        data = lowrank(60, 8, 2, 0.1, seed=38)
        state = initial_sem_state(2, 8, seed=39)
        stats = sem_batch_statistics(data, state, update_mean=True, residual="dense")
        with pytest.raises(ShapeError):
            stats.as_payload()


class TestConvergence:
    """Subspace-angle convergence against batch PPCA on paper-spec data."""

    def test_tracks_batch_ppca_subspace(self):
        data = lowrank_dense(1600, 30, 4, noise=0.05, seed=40)
        config = SPCAConfig(
            n_components=4, max_iterations=30, tolerance=1e-6, seed=41,
            compute_error_every_iteration=False,
        )
        batch_model, _ = SPCA(config, SequentialBackend(config)).fit(data)
        stream_model = IncrementalPPCA(
            4, batch_size=200, n_epochs=10, seed=42
        ).fit(data)
        exact = exact_basis(data, 4)
        batch_angle = subspace_angle_degrees(batch_model.basis, exact)
        stream_angle = subspace_angle_degrees(stream_model.basis, exact)
        assert stream_angle < 8.0
        # The mini-batch estimator lands in the same subspace neighbourhood
        # as full-batch EM (stochastic, so allow some slack).
        assert abs(stream_angle - batch_angle) < 8.0
        assert subspace_angle_degrees(stream_model.basis, batch_model.basis) < 10.0


class TestStreamEdgeCases:
    def test_empty_batches_are_skipped(self):
        data = lowrank(300, 10, 2, 0.1, seed=50)
        batches = [data[i : i + 100] for i in range(0, 300, 100)]
        empty = np.zeros((0, 10))
        with_empties = [empty, batches[0], empty, batches[1], batches[2], empty]
        a = IncrementalPPCA(2, seed=51).partial_fit_stream(batches, n_cols=10)
        b = IncrementalPPCA(2, seed=51).partial_fit_stream(with_empties, n_cols=10)
        assert_models_bitwise(a, b)

    def test_all_empty_stream_rejected(self):
        with pytest.raises(ShapeError):
            IncrementalPPCA(2, seed=52).partial_fit_stream(
                [np.zeros((0, 6))] * 3, n_cols=6
            )

    def test_ragged_batch_sizes(self):
        data = lowrank(330, 12, 2, 0.1, seed=53)
        cuts = [0, 7, 70, 71, 200, 330]
        ragged = [data[a:b] for a, b in zip(cuts[:-1], cuts[1:])]
        model = IncrementalPPCA(2, seed=54).partial_fit_stream(ragged, n_cols=12)
        assert model.n_samples == 330
        assert subspace_angle_degrees(model.basis, exact_basis(data, 2)) < 25.0

    def test_sparse_csr_batches(self):
        matrix = sp.random(900, 30, density=0.15, random_state=55, format="csr")
        batches = [matrix[i : i + 150] for i in range(0, 900, 150)]
        model = IncrementalPPCA(3, seed=56).partial_fit_stream(batches, n_cols=30)
        assert model.components.shape == (30, 3)
        assert np.isfinite(model.noise_variance)
        np.testing.assert_allclose(
            model.mean, np.asarray(matrix.mean(axis=0)).ravel(), atol=1e-8
        )

    def test_step_decay_boundaries(self):
        data = lowrank(120, 8, 2, 0.1, seed=57)
        batches = [data[:60], data[60:]]
        # kappa = 0.5 violates Robbins-Monro; kappa = 1.0 is the boundary.
        with pytest.raises(ShapeError):
            IncrementalPPCA(2, step_decay=0.5, seed=58).partial_fit_stream(
                batches, n_cols=8
            )
        with pytest.raises(ShapeError):
            IncrementalPPCA(2, step_decay=1.0001, seed=58).partial_fit_stream(
                batches, n_cols=8
            )
        model = IncrementalPPCA(2, step_decay=1.0, seed=58).partial_fit_stream(
            batches, n_cols=8
        )
        assert np.isfinite(model.noise_variance)

    def test_seeded_determinism_pin(self):
        data = lowrank(400, 14, 3, 0.1, seed=59)
        batches = [data[i : i + 80] for i in range(0, 400, 80)]
        a = IncrementalPPCA(3, seed=60).partial_fit_stream(batches, n_cols=14)
        b = IncrementalPPCA(3, seed=60).partial_fit_stream(batches, n_cols=14)
        assert_models_bitwise(a, b)
        fit_a = IncrementalPPCA(3, batch_size=80, seed=60).fit(data)
        fit_b = IncrementalPPCA(3, batch_size=80, seed=60).fit(data)
        assert_models_bitwise(fit_a, fit_b)
        different = IncrementalPPCA(3, seed=61).partial_fit_stream(batches, n_cols=14)
        assert not np.array_equal(a.components, different.components)
