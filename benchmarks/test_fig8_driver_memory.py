"""Figure 8: driver memory consumption vs columns, on Spark.

Paper shape: sPCA-Spark's driver memory is almost flat in D (it only holds
O(D*d) state), while MLlib-PCA's grows as D^2 until it exceeds the driver's
memory -- which is exactly where Figure 7's failures come from.
"""

import pytest

from harness import format_bytes, run_mllib, run_spca
from repro.data.generators import bag_of_words
from repro.data.paper import scaled_cluster

COLUMN_SWEEP = (200, 400, 600, 1500, 4000, 7150)
N_ROWS = 4_000


@pytest.mark.benchmark(group="fig8")
def test_fig8_driver_memory(benchmark, report):
    results = {}

    def run_all():
        for n_cols in COLUMN_SWEEP:
            data = bag_of_words(N_ROWS, n_cols, words_per_doc=8.0, seed=808)
            results[n_cols] = (run_spca(data, "spark"), run_mllib(data))
        return len(results)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    limit = scaled_cluster().driver_memory_bytes
    report(
        f"Figure 8: peak driver memory vs columns (N={N_ROWS}; "
        f"driver limit {format_bytes(limit)})"
    )
    report(f"{'columns':>9}{'sPCA-Spark':>14}{'MLlib-PCA':>14}")
    for n_cols, (spca, mllib) in results.items():
        mllib_cell = (
            f"{format_bytes(mllib.peak_driver_bytes)} (OOM)"
            if mllib.failed
            else format_bytes(mllib.peak_driver_bytes)
        )
        report(
            f"{n_cols:>9,}{format_bytes(spca.peak_driver_bytes):>14}{mllib_cell:>20}"
        )

    # sPCA's driver memory stays under the limit at every size and grows
    # only linearly with D.
    for n_cols, (spca, _) in results.items():
        assert spca.peak_driver_bytes < limit, n_cols
    spca_growth = (
        results[600][0].peak_driver_bytes / results[200][0].peak_driver_bytes
    )
    assert spca_growth < 5.0

    # MLlib's driver memory grows ~quadratically until the boundary.
    mllib_growth = (
        results[600][1].peak_driver_bytes / results[200][1].peak_driver_bytes
    )
    assert mllib_growth > 5.0
    # Beyond the boundary, the requested covariance no longer fits.
    assert results[1500][1].failed
    # sPCA uses far less driver memory than MLlib at the boundary size.
    assert (
        results[600][0].peak_driver_bytes < 0.5 * results[600][1].peak_driver_bytes
    )
