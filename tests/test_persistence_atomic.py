"""Atomic archive writes and typed corrupt-archive errors.

``save_model``/``save_checkpoint`` must never leave a truncated archive at
the target path: a crash mid-save (simulated here by failing the compressor
or the final rename) leaves the previous complete file untouched and no
temp droppings behind.  ``load_model``/``load_checkpoint`` turn whatever a
half-written file throws into a typed error naming the corrupt path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoint import EMCheckpoint
from repro.core.model import PCAModel
from repro.core.persistence import (
    load_checkpoint,
    load_model,
    save_checkpoint,
    save_model,
)
from repro.errors import CheckpointError, PersistenceError


@pytest.fixture
def model():
    return PCAModel(
        components=np.arange(8.0).reshape(4, 2),
        mean=np.array([1.0, 2.0, 3.0, 4.0]),
        noise_variance=0.25,
        n_samples=50,
    )


@pytest.fixture
def checkpoint(model):
    return EMCheckpoint(
        iteration=3,
        components=model.components,
        noise_variance=0.25,
        mean=model.mean,
        ss1=1.5,
        previous_error=None,
        rng_state=np.random.default_rng(0).bit_generator.state,
        history=(),
        config={"n_components": 2},
    )


class _MidWriteCrash(RuntimeError):
    pass


def _crashing_savez(handle, **arrays):
    handle.write(b"PK\x03\x04 partial zip header then death")
    raise _MidWriteCrash("simulated crash mid-compress")


class TestAtomicSaveModel:
    def test_crash_mid_write_preserves_previous_archive(self, tmp_path, model, monkeypatch):
        path = save_model(model, tmp_path / "model.npz")
        before = path.read_bytes()
        monkeypatch.setattr(np, "savez_compressed", _crashing_savez)
        with pytest.raises(_MidWriteCrash):
            save_model(model, path)
        assert path.read_bytes() == before
        assert np.array_equal(load_model(path).components, model.components)

    def test_crash_mid_write_leaves_no_temp_files(self, tmp_path, model, monkeypatch):
        monkeypatch.setattr(np, "savez_compressed", _crashing_savez)
        with pytest.raises(_MidWriteCrash):
            save_model(model, tmp_path / "model.npz")
        assert list(tmp_path.iterdir()) == []

    def test_crash_at_rename_cleans_temp(self, tmp_path, model, monkeypatch):
        import repro.core.persistence as persistence

        def crashing_replace(src, dst):
            raise _MidWriteCrash("simulated crash at rename")

        monkeypatch.setattr(persistence.os, "replace", crashing_replace)
        with pytest.raises(_MidWriteCrash):
            save_model(model, tmp_path / "model.npz")
        assert list(tmp_path.iterdir()) == []

    def test_successful_save_round_trips(self, tmp_path, model):
        path = save_model(model, tmp_path / "model.npz")
        loaded = load_model(path)
        assert np.array_equal(loaded.components, model.components)
        assert np.array_equal(loaded.mean, model.mean)
        assert list(tmp_path.iterdir()) == [path]


class TestAtomicSaveCheckpoint:
    def test_crash_mid_write_preserves_previous_snapshot(
        self, tmp_path, checkpoint, monkeypatch
    ):
        path = save_checkpoint(checkpoint, tmp_path / "ckpt.npz")
        before = path.read_bytes()
        monkeypatch.setattr(np, "savez_compressed", _crashing_savez)
        with pytest.raises(_MidWriteCrash):
            save_checkpoint(checkpoint, path)
        assert path.read_bytes() == before
        assert load_checkpoint(path).iteration == checkpoint.iteration

    def test_round_trip(self, tmp_path, checkpoint):
        path = save_checkpoint(checkpoint, tmp_path / "ckpt.npz")
        loaded = load_checkpoint(path)
        assert loaded.iteration == 3
        assert loaded.config == {"n_components": 2}


class TestCorruptArchiveErrors:
    def test_load_model_garbage_raises_typed_error_naming_path(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(PersistenceError) as excinfo:
            load_model(path)
        assert str(path) in str(excinfo.value)

    def test_load_model_truncated_raises_typed_error(self, tmp_path, model):
        path = save_model(model, tmp_path / "model.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(PersistenceError) as excinfo:
            load_model(path)
        assert str(path) in str(excinfo.value)

    def test_load_model_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "never-written.npz")

    def test_load_checkpoint_garbage_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert str(path) in str(excinfo.value)
