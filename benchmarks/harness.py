"""Shared machinery for the table/figure reproduction benchmarks.

Wraps the four compared algorithms behind one interface:

- ``run_spca(data, platform, ...)``   -- sPCA-MapReduce / sPCA-Spark / sequential
- ``run_mllib(data, ...)``            -- MLlib-PCA analog (may return FAILED)
- ``run_mahout(data, ...)``           -- Mahout-PCA analog

All runs use the *scaled* paper cluster (see ``repro.data.paper``) and a
cost model whose ``compute_scale`` amplifies measured single-process task
times to cluster scale, so simulated times are compute-dominated the way the
paper's real runs were.  Only time *ratios* are meaningful.
"""

from __future__ import annotations

import contextlib
import pathlib
from dataclasses import dataclass, replace

import numpy as np

from repro.backends import MapReduceBackend, SequentialBackend, SparkBackend
from repro.baselines import CovariancePCA, SSVDPCAMapReduce
from repro.core import SPCA, SPCAConfig
from repro.data.paper import SCALED_COMPONENTS, scaled_cluster
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.simtime import HADOOP_LIKE_COSTS, SPARK_LIKE_COSTS
from repro.engine.spark.context import SparkContext
from repro.errors import DriverOutOfMemoryError
from repro.metrics import ideal_accuracy
from repro.obs import tracing, write_trace

FAILED = "Fail"

# Every benchmark run leaves a Perfetto-loadable trace artifact next to the
# text tables; set CAPTURE_TRACES = False to skip the files.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CAPTURE_TRACES = True


@contextlib.contextmanager
def trace_capture(label: str, sink: dict | None = None):
    """Trace the enclosed run into ``benchmarks/results/<label>.trace.json``.

    The label should be deterministic (algorithm, platform, data shape,
    node count) so reruns overwrite rather than accumulate.  When *sink* is
    given, the written path is stored under ``sink["trace_path"]``.
    """
    if not CAPTURE_TRACES:
        yield None
        return
    with tracing() as tracer:
        yield tracer
    path = write_trace(tracer, RESULTS_DIR / f"{label}.trace.json")
    if sink is not None:
        sink["trace_path"] = str(path)


def _shape_label(algorithm: str, data, d: int, num_nodes: int) -> str:
    rows, cols = data.shape
    return f"{algorithm}_{rows}x{cols}_d{d}_nodes{num_nodes}"

# Calibration: measured task compute is amplified (our process crunches the
# scaled-down data far faster than the paper's cluster crunched the full
# data) and bandwidths are scaled *down* so that data movement costs matter
# in the same proportion they did at paper scale.  Only ratios between runs
# are meaningful.
COMPUTE_SCALE = 500.0
DISK_BYTES_PER_S = 8.0 * 1024**2
NETWORK_BYTES_PER_S = 32.0 * 1024**2

MR_COSTS = replace(
    HADOOP_LIKE_COSTS,
    compute_scale=COMPUTE_SCALE,
    disk_bytes_per_s=DISK_BYTES_PER_S,
    network_bytes_per_s=NETWORK_BYTES_PER_S,
)
SPARK_COSTS = replace(
    SPARK_LIKE_COSTS,
    compute_scale=COMPUTE_SCALE,
    disk_bytes_per_s=DISK_BYTES_PER_S,
    network_bytes_per_s=NETWORK_BYTES_PER_S,
)


@dataclass
class RunOutcome:
    """Uniform result record for any of the four algorithms."""

    algorithm: str
    seconds: float | None  # simulated seconds; None when the run failed
    time_to_target: float | None
    intermediate_bytes: int
    peak_driver_bytes: int
    accuracy_timeline: list[tuple[float, float]]
    final_accuracy: float | None
    trace_path: str | None = None

    @property
    def failed(self) -> bool:
        return self.seconds is None

    @property
    def effective_time(self) -> float:
        """Time-to-target when reached, total running time otherwise."""
        if self.time_to_target is not None:
            return self.time_to_target
        return self.seconds if self.seconds is not None else float("inf")

    def cell(self) -> str:
        """Table 2 style cell: integer seconds or 'Fail'."""
        if self.failed:
            return FAILED
        shown = self.time_to_target if self.time_to_target is not None else self.seconds
        return f"{shown:,.0f}"


def default_config(d: int = SCALED_COMPONENTS, **kwargs) -> SPCAConfig:
    base = dict(
        n_components=d,
        max_iterations=10,
        tolerance=0.0,
        target_accuracy=0.95,
        error_sample_fraction=0.2,
        seed=7,
    )
    base.update(kwargs)
    return SPCAConfig(**base)


def make_backend(
    platform: str,
    config: SPCAConfig,
    num_nodes: int = 8,
    compute_scale: float | None = None,
):
    cluster = scaled_cluster(num_nodes)
    if platform == "mapreduce":
        costs = MR_COSTS if compute_scale is None else replace(
            MR_COSTS, compute_scale=compute_scale
        )
        return MapReduceBackend(
            config, MapReduceRuntime(cluster=cluster, cost_model=costs)
        )
    if platform == "spark":
        costs = SPARK_COSTS if compute_scale is None else replace(
            SPARK_COSTS, compute_scale=compute_scale
        )
        return SparkBackend(config, SparkContext(cluster=cluster, cost_model=costs))
    return SequentialBackend(config)


def dataset_ideal_accuracy(data, d: int = SCALED_COMPONENTS) -> float:
    """Exact rank-d accuracy, sampled for speed on larger matrices."""
    rng = np.random.default_rng(5)
    fraction = 1.0 if data.shape[0] <= 2000 else 2000 / data.shape[0]
    return ideal_accuracy(data, d, sample_fraction=fraction, rng=rng)


def run_spca(
    data,
    platform: str,
    d: int = SCALED_COMPONENTS,
    ideal: float | None = None,
    num_nodes: int = 8,
    config: SPCAConfig | None = None,
    compute_scale: float | None = None,
) -> RunOutcome:
    """Fit sPCA on *platform* and report paper-style measurements."""
    if config is None:
        config = default_config(d, ideal_accuracy=ideal)
    backend = make_backend(platform, config, num_nodes, compute_scale)
    sink: dict = {}
    label = _shape_label(f"spca-{platform}", data, d, num_nodes)
    with trace_capture(label, sink):
        model, history = SPCA(config, backend).fit(data)
    timeline = history.accuracy_timeline(simulated=True)
    target = None
    if ideal is not None:
        target = history.time_to_accuracy(0.95 * ideal, simulated=True)
    peak = 0
    if platform == "spark":
        peak = backend.context.driver.peak_bytes
    return RunOutcome(
        algorithm=f"sPCA-{platform}",
        seconds=backend.simulated_seconds,
        time_to_target=target,
        intermediate_bytes=backend.intermediate_bytes,
        peak_driver_bytes=peak,
        accuracy_timeline=timeline,
        final_accuracy=history.final_accuracy,
        trace_path=sink.get("trace_path"),
    )


def run_mllib(data, d: int = SCALED_COMPONENTS, num_nodes: int = 8) -> RunOutcome:
    """Fit the MLlib-PCA analog; returns a FAILED outcome on driver OOM."""
    context = SparkContext(cluster=scaled_cluster(num_nodes), cost_model=SPARK_COSTS)
    algorithm = CovariancePCA(d, context)
    sink: dict = {}
    try:
        with trace_capture(_shape_label("mllib", data, d, num_nodes), sink):
            result = algorithm.fit(data)
    except DriverOutOfMemoryError:
        return RunOutcome(
            algorithm="MLlib-PCA",
            seconds=None,
            time_to_target=None,
            intermediate_bytes=0,
            peak_driver_bytes=context.driver.peak_bytes,
            accuracy_timeline=[],
            final_accuracy=None,
        )
    return RunOutcome(
        algorithm="MLlib-PCA",
        seconds=result.simulated_seconds,
        time_to_target=result.simulated_seconds,  # deterministic, one shot
        intermediate_bytes=result.intermediate_bytes,
        peak_driver_bytes=result.peak_driver_bytes,
        accuracy_timeline=[],
        final_accuracy=None,
        trace_path=sink.get("trace_path"),
    )


def run_mahout(
    data,
    d: int = SCALED_COMPONENTS,
    ideal: float | None = None,
    num_nodes: int = 8,
    power_iterations: int = 4,
    compute_accuracy: bool = True,
) -> RunOutcome:
    """Fit the Mahout-PCA analog on the MapReduce engine.

    Low oversampling (Mahout-like small p) means early passes are rough and
    accuracy climbs over the power iterations, matching the slow convergence
    the paper measures for Mahout-PCA in Figures 4-5.
    """
    runtime = MapReduceRuntime(cluster=scaled_cluster(num_nodes), cost_model=MR_COSTS)
    algorithm = SSVDPCAMapReduce(
        d,
        oversampling=2,
        power_iterations=power_iterations,
        runtime=runtime,
        error_sample_fraction=0.2,
    )
    sink: dict = {}
    with trace_capture(_shape_label("mahout", data, d, num_nodes), sink):
        result = algorithm.fit(data, compute_accuracy=compute_accuracy)
    target = None
    if ideal is not None and compute_accuracy:
        target = result.time_to_accuracy(0.95 * ideal)
    if target is None:
        target = result.simulated_seconds
    return RunOutcome(
        algorithm="Mahout-PCA",
        seconds=result.simulated_seconds,
        time_to_target=target,
        intermediate_bytes=result.intermediate_bytes,
        peak_driver_bytes=0,
        accuracy_timeline=result.accuracy_timeline,
        final_accuracy=result.accuracy_timeline[-1][1] if result.accuracy_timeline else None,
        trace_path=sink.get("trace_path"),
    )


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte counts for the intermediate-data tables."""
    size = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if size < 1024.0 or unit == "TB":
            return f"{size:,.1f} {unit}"
        size /= 1024.0
    return f"{size:,.1f} TB"
