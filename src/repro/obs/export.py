"""Trace exporters and loaders: Chrome trace-event JSON and JSONL.

The Chrome format (``{"traceEvents": [...]}``) loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  The **simulated clock**
is used as the trace clock -- ``ts`` is simulated microseconds -- so the
timeline shows the cluster's parallelism (one Perfetto track per execution
slot) rather than the single-process simulator's sequential wall clock.

Both formats embed the full-precision span fields in each event's ``args``,
so a written trace loads back bit-exactly (``ts``/``dur`` alone would lose
precision to microsecond rounding) and the reconciliation check against
:class:`repro.engine.metrics.EngineMetrics` keeps holding after a round
trip through disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.tracer import EventRecord, SpanRecord, Tracer

JSONL_SCHEMA = "repro.obs/1"

_PID = 1
_DRIVER_TID = 0


@dataclass
class TraceData:
    """A loaded or snapshotted trace: plain span/event record lists."""

    spans: list[SpanRecord] = field(default_factory=list)
    events: list[EventRecord] = field(default_factory=list)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "TraceData":
        return cls(spans=list(tracer.spans), events=list(tracer.events))


def _span_args(span: SpanRecord) -> dict[str, Any]:
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "kind": span.kind,
        "t0": span.t0,
        "dur": span.dur,
        "wall_t0": span.wall_t0,
        "wall_dur": span.wall_dur,
        "track": span.track,
        "attrs": span.attrs,
    }


def to_chrome(trace: TraceData) -> dict[str, Any]:
    """Render *trace* as a Chrome trace-event JSON object."""
    events: list[dict[str, Any]] = [
        {
            "ph": "M", "pid": _PID, "tid": _DRIVER_TID, "name": "process_name",
            "args": {"name": "simulated cluster (sim-time clock)"},
        },
        {
            "ph": "M", "pid": _PID, "tid": _DRIVER_TID, "name": "thread_name",
            "args": {"name": "driver"},
        },
    ]
    slots = sorted({span.track for span in trace.spans if span.track is not None})
    for slot in slots:
        events.append(
            {
                "ph": "M", "pid": _PID, "tid": slot + 1, "name": "thread_name",
                "args": {"name": f"slot {slot}"},
            }
        )
    for span in trace.spans:
        tid = _DRIVER_TID if span.track is None else span.track + 1
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.t0 * 1e6,
                "dur": span.dur * 1e6,
                "pid": _PID,
                "tid": tid,
                "args": _span_args(span),
            }
        )
    intermediate_total = 0
    for span in trace.spans:
        if span.kind != "job":
            continue
        intermediate_total += int(span.attrs.get("intermediate_bytes", 0))
        events.append(
            {
                "name": "intermediate bytes",
                "cat": "counters",
                "ph": "C",
                "ts": (span.t0 + span.dur) * 1e6,
                "pid": _PID,
                "tid": _DRIVER_TID,
                "args": {"cumulative": intermediate_total},
            }
        )
    for event in trace.events:
        events.append(
            {
                "name": event.type,
                "cat": "event",
                "ph": "i",
                "ts": event.t * 1e6,
                "pid": _PID,
                "tid": _DRIVER_TID,
                "s": "p",
                "args": {
                    "event_id": event.event_id,
                    "parent_id": event.parent_id,
                    "type": event.type,
                    "t": event.t,
                    "wall_t": event.wall_t,
                    "attrs": event.attrs,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_jsonl_lines(trace: TraceData) -> list[str]:
    """Render *trace* as JSONL lines (header + one record per line)."""
    lines = [json.dumps({"rec": "header", "schema": JSONL_SCHEMA,
                         "spans": len(trace.spans), "events": len(trace.events)})]
    for span in trace.spans:
        payload = {"rec": "span", "name": span.name}
        payload.update(_span_args(span))
        lines.append(json.dumps(payload))
    for event in trace.events:
        lines.append(
            json.dumps(
                {
                    "rec": "event",
                    "event_id": event.event_id,
                    "parent_id": event.parent_id,
                    "type": event.type,
                    "t": event.t,
                    "wall_t": event.wall_t,
                    "attrs": event.attrs,
                }
            )
        )
    return lines


def _span_from_payload(payload: dict[str, Any], name: str) -> SpanRecord:
    return SpanRecord(
        span_id=payload["span_id"],
        parent_id=payload["parent_id"],
        kind=payload["kind"],
        name=name,
        t0=payload["t0"],
        dur=payload["dur"],
        wall_t0=payload["wall_t0"],
        wall_dur=payload["wall_dur"],
        track=payload.get("track"),
        attrs=payload.get("attrs") or {},
    )


def _event_from_payload(payload: dict[str, Any]) -> EventRecord:
    return EventRecord(
        event_id=payload["event_id"],
        parent_id=payload["parent_id"],
        type=payload["type"],
        t=payload["t"],
        wall_t=payload["wall_t"],
        attrs=payload.get("attrs") or {},
    )


def from_chrome(document: dict[str, Any]) -> TraceData:
    """Reconstruct a :class:`TraceData` from a Chrome trace-event object."""
    trace = TraceData()
    for entry in document.get("traceEvents", []):
        args = entry.get("args") or {}
        if entry.get("ph") == "X" and "span_id" in args:
            trace.spans.append(_span_from_payload(args, entry.get("name", "")))
        elif entry.get("ph") == "i" and "event_id" in args:
            trace.events.append(_event_from_payload(args))
    trace.spans.sort(key=lambda span: span.span_id)
    trace.events.sort(key=lambda event: event.event_id)
    return trace


def from_jsonl_lines(lines: list[str]) -> TraceData:
    """Reconstruct a :class:`TraceData` from JSONL lines."""
    trace = TraceData()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        rec = payload.get("rec")
        if rec == "span":
            trace.spans.append(_span_from_payload(payload, payload.get("name", "")))
        elif rec == "event":
            trace.events.append(_event_from_payload(payload))
    return trace


def write_trace(trace: TraceData | Tracer, path: str | Path) -> Path:
    """Write *trace* to *path*; ``.jsonl`` selects JSONL, anything else Chrome."""
    if isinstance(trace, Tracer):
        trace = TraceData.from_tracer(trace)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".jsonl":
        path.write_text("\n".join(to_jsonl_lines(trace)) + "\n")
    else:
        path.write_text(json.dumps(to_chrome(trace), indent=1))
    return path


def load_trace(path: str | Path) -> TraceData:
    """Load a trace file written by :func:`write_trace` (either format)."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:4096]:
        return from_chrome(json.loads(text))
    return from_jsonl_lines(text.splitlines())
