"""Run the same sPCA fit on all three backends and compare the platforms.

Demonstrates the paper's central systems claim: the identical algorithm
produces the identical model everywhere, while the platforms differ in
simulated running time and intermediate data -- disk-based MapReduce pays
job overheads and disk I/O that memory-based Spark does not.

Run with:  python examples/platform_comparison.py
"""

import numpy as np

from repro.backends import MapReduceBackend, SequentialBackend, SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.data import bag_of_words
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce import MapReduceRuntime
from repro.engine.spark import SparkContext


def main() -> None:
    data = bag_of_words(10_000, 2_000, words_per_doc=8.0, seed=21)
    config = SPCAConfig(n_components=10, max_iterations=5, tolerance=0.0, seed=5,
                        compute_error_every_iteration=False)
    cluster = ClusterSpec(num_nodes=4, cores_per_node=4)

    backends = {
        "sequential": SequentialBackend(config),
        "mapreduce": MapReduceBackend(config, MapReduceRuntime(cluster=cluster)),
        "spark": SparkBackend(config, SparkContext(cluster=cluster)),
    }

    models = {}
    print(f"{'backend':<12}{'sim time (s)':>14}{'intermediate':>16}")
    for name, backend in backends.items():
        model, _ = SPCA(config, backend).fit(data)
        models[name] = model
        print(f"{name:<12}{backend.simulated_seconds:>14.2f}"
              f"{backend.intermediate_bytes:>14,} B")

    # All platforms computed the same principal components.
    for name in ("mapreduce", "spark"):
        drift = np.abs(models[name].components - models["sequential"].components).max()
        print(f"max |C_{name} - C_sequential| = {drift:.2e}")


if __name__ == "__main__":
    main()
