"""The mean-propagated CenteredOperator."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.linalg.operators import CenteredOperator


@pytest.fixture
def matrix():
    return sp.random(60, 18, density=0.25, random_state=1, format="csr")


@pytest.fixture
def centered(matrix):
    dense = np.asarray(matrix.todense())
    return dense - dense.mean(axis=0)


def test_matvec_matches_dense(matrix, centered):
    rng = np.random.default_rng(0)
    vec = rng.normal(size=18)
    operator = CenteredOperator(matrix)
    np.testing.assert_allclose(operator.matvec(vec), centered @ vec, atol=1e-12)


def test_rmatvec_matches_dense(matrix, centered):
    rng = np.random.default_rng(1)
    vec = rng.normal(size=60)
    operator = CenteredOperator(matrix)
    np.testing.assert_allclose(operator.rmatvec(vec), centered.T @ vec, atol=1e-12)


def test_matmat_matches_dense(matrix, centered):
    rng = np.random.default_rng(2)
    mat = rng.normal(size=(18, 4))
    operator = CenteredOperator(matrix)
    np.testing.assert_allclose(operator @ mat, centered @ mat, atol=1e-12)


def test_explicit_mean_accepted(matrix, centered):
    mean = np.asarray(matrix.todense()).mean(axis=0)
    operator = CenteredOperator(matrix, mean)
    vec = np.ones(18)
    np.testing.assert_allclose(operator.matvec(vec), centered @ vec, atol=1e-12)


def test_top_singular_subspace_matches_dense_svd(matrix, centered):
    operator = CenteredOperator(matrix)
    u, s, vt = operator.top_singular_subspace(3)
    s_exact = np.linalg.svd(centered, compute_uv=False)
    np.testing.assert_allclose(s, s_exact[:3], rtol=1e-8)
    assert np.all(np.diff(s) <= 1e-10)
    np.testing.assert_allclose(u.T @ u, np.eye(3), atol=1e-8)


def test_validation(matrix):
    with pytest.raises(ShapeError):
        CenteredOperator(matrix, np.zeros(5))
    with pytest.raises(ShapeError):
        CenteredOperator(matrix).top_singular_subspace(0)
    with pytest.raises(ShapeError):
        CenteredOperator(matrix).top_singular_subspace(100)
