"""Extended comparison: every PCA method of Section 2 on one dataset.

The paper's Table 2 times four implementations; its Section 2 analyzes six
methods.  This bench runs all of them on a mid-size sparse matrix --
covariance-eigen (both platforms), SVD-Bidiag, SVD-Lanczos (propagated and
densified centering), SSVD/Mahout, and sPCA on both platforms -- verifying
that every method recovers (approximately) the same subspace and recording
what each costs.  Sequential methods report wall seconds; engine-backed
methods report simulated cluster seconds.
"""

import time

import numpy as np
import pytest

from harness import MR_COSTS, SPARK_COSTS, dataset_ideal_accuracy, default_config
from repro.backends import MapReduceBackend, SparkBackend
from repro.baselines import (
    CovariancePCA,
    CovariancePCAMapReduce,
    SSVDPCAMapReduce,
    lanczos_svd,
    svd_bidiag,
)
from repro.core import SPCA
from repro.data.generators import bag_of_words
from repro.data.paper import scaled_cluster
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext
from repro.metrics import accuracy_from_error, reconstruction_error

N_ROWS, N_COLS, D = 6_000, 500, 10


def _accuracy(data, components, mean):
    return accuracy_from_error(reconstruction_error(data, components, mean))


@pytest.mark.benchmark(group="all-methods")
def test_all_methods_comparison(benchmark, report):
    data = bag_of_words(N_ROWS, N_COLS, words_per_doc=8.0, seed=88)
    mean = np.asarray(data.mean(axis=0)).ravel()
    ideal = dataset_ideal_accuracy(data, D)
    rows = {}

    def run_all():
        config = default_config(ideal_accuracy=ideal)

        backend = SparkBackend(
            config, SparkContext(cluster=scaled_cluster(), cost_model=SPARK_COSTS)
        )
        model, _ = SPCA(config, backend).fit(data)
        rows["sPCA-Spark"] = (
            backend.simulated_seconds, _accuracy(data, model.components, model.mean)
        )

        backend = MapReduceBackend(
            config, MapReduceRuntime(cluster=scaled_cluster(), cost_model=MR_COSTS)
        )
        model, _ = SPCA(config, backend).fit(data)
        rows["sPCA-MapReduce"] = (
            backend.simulated_seconds, _accuracy(data, model.components, model.mean)
        )

        result = CovariancePCA(
            D, SparkContext(cluster=scaled_cluster(), cost_model=SPARK_COSTS)
        ).fit(data)
        rows["Covariance (Spark/MLlib)"] = (
            result.simulated_seconds,
            _accuracy(data, result.model.components, result.model.mean),
        )

        result = CovariancePCAMapReduce(
            D, MapReduceRuntime(cluster=scaled_cluster(), cost_model=MR_COSTS)
        ).fit(data)
        rows["Covariance (MapReduce)"] = (
            result.simulated_seconds,
            _accuracy(data, result.model.components, result.model.mean),
        )

        result = SSVDPCAMapReduce(
            D, oversampling=2, power_iterations=3,
            runtime=MapReduceRuntime(cluster=scaled_cluster(), cost_model=MR_COSTS),
        ).fit(data, compute_accuracy=False)
        rows["SSVD (MapReduce/Mahout)"] = (
            result.simulated_seconds,
            _accuracy(data, result.model.components, result.model.mean),
        )

        started = time.perf_counter()
        _, _, vt, _ = svd_bidiag(
            np.asarray(data.todense()) - mean, n_components=D
        )
        rows["SVD-Bidiag (sequential)"] = (
            time.perf_counter() - started, _accuracy(data, vt.T, mean)
        )

        started = time.perf_counter()
        _, _, vt = lanczos_svd(data, D, center="propagate", seed=0)
        rows["SVD-Lanczos (propagate)"] = (
            time.perf_counter() - started, _accuracy(data, vt.T, mean)
        )

        started = time.perf_counter()
        _, _, vt = lanczos_svd(data, D, center="densify", seed=0)
        rows["SVD-Lanczos (densify)"] = (
            time.perf_counter() - started, _accuracy(data, vt.T, mean)
        )
        return len(rows)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report(f"All methods on tweets-like {N_ROWS}x{N_COLS}, d={D} "
           f"(ideal accuracy {ideal:.4f})")
    report(f"{'method':<28}{'seconds':>10}{'accuracy':>10}")
    for method, (seconds, accuracy) in rows.items():
        report(f"{method:<28}{seconds:>10.2f}{accuracy:>10.4f}")
    report("(engine methods: simulated cluster s; sequential methods: wall s)")

    # Every exact method lands on essentially the ideal accuracy; the
    # randomized/iterative ones come close.
    for method in (
        "Covariance (Spark/MLlib)", "Covariance (MapReduce)",
        "SVD-Bidiag (sequential)", "SVD-Lanczos (propagate)",
        "SVD-Lanczos (densify)",
    ):
        assert rows[method][1] == pytest.approx(ideal, abs=0.02), method
    for method in ("sPCA-Spark", "sPCA-MapReduce", "SSVD (MapReduce/Mahout)"):
        assert rows[method][1] > 0.9 * ideal, method

    # The two Lanczos centerings agree; the propagated one is not slower by
    # more than the densification overhead regime allows at this size.
    assert rows["SVD-Lanczos (propagate)"][1] == pytest.approx(
        rows["SVD-Lanczos (densify)"][1], abs=0.01
    )
