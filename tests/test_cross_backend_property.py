"""Property-based cross-backend equivalence of the full sPCA pipeline.

Hypothesis draws random matrix shapes, sparsity, and seeds; all three
backends must produce the same components to floating-point accuracy.  Few
examples (the pipeline is expensive), broad input space.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import MapReduceBackend, SequentialBackend, SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.engine.cluster import ClusterSpec
from repro.engine.mapreduce.runtime import MapReduceRuntime
from repro.engine.spark.context import SparkContext

CLUSTER = ClusterSpec(num_nodes=1, cores_per_node=2)


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_rows=st.integers(min_value=20, max_value=120),
    n_cols=st.integers(min_value=6, max_value=30),
    d=st.integers(min_value=1, max_value=4),
    density=st.floats(min_value=0.05, max_value=0.6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_backends_agree(n_rows, n_cols, d, density, seed):
    d = min(d, n_cols - 1, n_rows - 1)
    matrix = sp.random(
        n_rows, n_cols, density=density, random_state=seed % 2**31, format="csr"
    )
    config = SPCAConfig(
        n_components=d, max_iterations=4, tolerance=0.0, seed=seed % 1000,
        compute_error_every_iteration=False,
    )
    reference, _ = SPCA(config, SequentialBackend(config)).fit(matrix)
    mapreduce, _ = SPCA(
        config, MapReduceBackend(config, MapReduceRuntime(cluster=CLUSTER))
    ).fit(matrix)
    spark, _ = SPCA(
        config, SparkBackend(config, SparkContext(cluster=CLUSTER))
    ).fit(matrix)
    np.testing.assert_allclose(
        mapreduce.components, reference.components, atol=1e-7, rtol=1e-6
    )
    np.testing.assert_allclose(
        spark.components, reference.components, atol=1e-7, rtol=1e-6
    )
    assert mapreduce.noise_variance == pytest.approx(
        reference.noise_variance, rel=1e-6, abs=1e-10
    )
    assert spark.noise_variance == pytest.approx(
        reference.noise_variance, rel=1e-6, abs=1e-10
    )


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_rows=st.integers(min_value=20, max_value=100),
    n_cols=st.integers(min_value=5, max_value=20),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_ablations_agree_with_optimized(n_rows, n_cols, seed):
    matrix = sp.random(
        n_rows, n_cols, density=0.3, random_state=seed % 2**31, format="csr"
    )
    d = min(3, n_cols - 1, n_rows - 1)
    base = SPCAConfig(
        n_components=d, max_iterations=3, tolerance=0.0, seed=seed % 1000,
        compute_error_every_iteration=False,
    )
    optimized, _ = SPCA(base, SequentialBackend(base)).fit(matrix)
    unoptimized_config = base.unoptimized()
    unoptimized, _ = SPCA(
        unoptimized_config, SequentialBackend(unoptimized_config)
    ).fit(matrix)
    np.testing.assert_allclose(
        unoptimized.components, optimized.components, atol=1e-7, rtol=1e-6
    )
