"""Unit tests for SPCAConfig and the convergence machinery."""

import pytest

from repro.core import ConvergenceTracker, IterationStats, SPCAConfig, TrainingHistory
from repro.core.config import OPTIMIZATION_FLAGS
from repro.errors import ShapeError


class TestSPCAConfig:
    def test_defaults_enable_all_optimizations(self):
        config = SPCAConfig(n_components=5)
        for flag in OPTIMIZATION_FLAGS:
            assert getattr(config, flag) is True

    def test_unoptimized_disables_all(self):
        config = SPCAConfig(n_components=5).unoptimized()
        for flag in OPTIMIZATION_FLAGS:
            assert getattr(config, flag) is False

    def test_with_options_returns_modified_copy(self):
        base = SPCAConfig(n_components=5)
        changed = base.with_options(max_iterations=3)
        assert changed.max_iterations == 3
        assert base.max_iterations == 10
        assert changed.n_components == 5

    def test_frozen(self):
        config = SPCAConfig(n_components=2)
        with pytest.raises(AttributeError):
            config.n_components = 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_components": 0},
            {"n_components": 2, "max_iterations": 0},
            {"n_components": 2, "error_sample_fraction": 0.0},
            {"n_components": 2, "error_sample_fraction": 1.5},
            {"n_components": 2, "smart_init_fraction": 0.0},
            {"n_components": 2, "tolerance": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ShapeError):
            SPCAConfig(**kwargs)


class TestConvergenceTracker:
    def test_stops_at_max_iterations(self):
        tracker = ConvergenceTracker(max_iterations=3)
        assert not tracker.update(0.5)
        assert not tracker.update(0.4)
        assert tracker.update(0.3)
        assert tracker.stop_reason == "max_iterations"

    def test_stops_at_target_accuracy(self):
        tracker = ConvergenceTracker(
            max_iterations=10, target_accuracy=0.95, ideal_accuracy=0.8
        )
        assert not tracker.update(0.5)       # accuracy 0.5 < 0.76
        assert tracker.update(0.2)           # accuracy 0.8 >= 0.76
        assert tracker.stop_reason == "target_accuracy"

    def test_stops_on_tolerance(self):
        tracker = ConvergenceTracker(max_iterations=100, tolerance=0.01)
        assert not tracker.update(0.50)
        assert not tracker.update(0.40)
        assert tracker.update(0.399)         # 0.25% change < 1%
        assert tracker.stop_reason == "tolerance"

    def test_none_error_only_counts_iterations(self):
        tracker = ConvergenceTracker(max_iterations=2, tolerance=0.5)
        assert not tracker.update(None)
        assert tracker.update(None)
        assert tracker.stop_reason == "max_iterations"

    def test_zero_tolerance_never_stops_early(self):
        tracker = ConvergenceTracker(max_iterations=4, tolerance=0.0)
        for _ in range(3):
            assert not tracker.update(0.5)
        assert tracker.update(0.5)


def make_stats(index, accuracy, seconds):
    return IterationStats(
        index=index,
        noise_variance=0.1,
        error=None if accuracy is None else 1 - accuracy,
        accuracy=accuracy,
        elapsed_seconds=seconds,
        simulated_seconds=seconds * 10,
        intermediate_bytes=index * 100,
    )


class TestTrainingHistory:
    def test_final_accuracy_skips_missing(self):
        history = TrainingHistory()
        history.append(make_stats(1, 0.5, 1.0))
        history.append(make_stats(2, None, 2.0))
        assert history.final_accuracy == 0.5

    def test_final_accuracy_none_when_never_measured(self):
        history = TrainingHistory()
        history.append(make_stats(1, None, 1.0))
        assert history.final_accuracy is None

    def test_timeline_simulated_vs_wall(self):
        history = TrainingHistory()
        history.append(make_stats(1, 0.4, 1.0))
        history.append(make_stats(2, 0.6, 2.0))
        assert history.accuracy_timeline(simulated=True) == [(10.0, 0.4), (20.0, 0.6)]
        assert history.accuracy_timeline(simulated=False) == [(1.0, 0.4), (2.0, 0.6)]

    def test_time_to_accuracy(self):
        history = TrainingHistory()
        history.append(make_stats(1, 0.4, 1.0))
        history.append(make_stats(2, 0.9, 2.0))
        assert history.time_to_accuracy(0.5) == 20.0
        assert history.time_to_accuracy(0.95) is None

    def test_n_iterations(self):
        history = TrainingHistory()
        assert history.n_iterations == 0
        history.append(make_stats(1, 0.1, 1.0))
        assert history.n_iterations == 1


class TestDriverEdgeCases:
    def test_no_error_measurement_means_full_budget(self):
        """Without per-iteration errors the target cannot trigger."""
        import numpy as np

        from repro.core import SPCA

        rng = np.random.default_rng(0)
        data = rng.normal(size=(60, 8))
        config = SPCAConfig(
            n_components=2, max_iterations=4, tolerance=0.5, seed=1,
            ideal_accuracy=0.5, compute_error_every_iteration=False,
        )
        _, history = SPCA(config).fit(data)
        assert history.n_iterations == 4
        assert history.stop_reason == "max_iterations"
        assert history.final_accuracy is None

    def test_single_iteration_budget(self):
        import numpy as np

        from repro.core import SPCA

        rng = np.random.default_rng(2)
        data = rng.normal(size=(40, 6))
        config = SPCAConfig(n_components=2, max_iterations=1, seed=3)
        model, history = SPCA(config).fit(data)
        assert history.n_iterations == 1
        assert model.components.shape == (6, 2)
