"""Perf regression harness for the batched record pipeline (BENCH_3)."""
