"""The sPCA driver: Algorithm 4 of the paper.

One driver program implements the EM control flow and executes every small
(d x d or D x d) operation locally; the three data-sized computations --
meanJob + FnormJob (once, before the loop), the consolidated YtXJob and
ss3Job (each iteration) -- are dispatched to a :class:`Backend`.  Swapping
the backend switches between sPCA-Sequential, sPCA-MapReduce and sPCA-Spark
without touching this file, which is the paper's claim that "the design is
general and can be implemented on different platforms".
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import SPCAConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (backends need core)
    from repro.backends.base import Backend
from repro.core.convergence import ConvergenceTracker, IterationStats, TrainingHistory
from repro.core.initialization import random_initialization, smart_guess_initialization
from repro.core.model import PCAModel
from repro.core.ppca import fit_ppca
from repro.errors import ShapeError
from repro.linalg.blocks import Matrix
from repro.obs import get_tracer


class SPCA:
    """Scalable PCA.

    Example:
        >>> import numpy as np
        >>> from repro.core import SPCA, SPCAConfig
        >>> rng = np.random.default_rng(0)
        >>> data = rng.normal(size=(200, 20)) @ rng.normal(size=(20, 20))
        >>> model, history = SPCA(SPCAConfig(n_components=3)).fit(data)
        >>> model.components.shape
        (20, 3)
    """

    def __init__(self, config: SPCAConfig, backend: Backend | None = None):
        if backend is None:
            from repro.backends.sequential import SequentialBackend

            backend = SequentialBackend(config)
        self.config = config
        self.backend = backend

    def fit(self, data: Matrix) -> tuple[PCAModel, TrainingHistory]:
        """Run the EM loop of Algorithm 4 and return the model + history."""
        config = self.config
        n_samples, n_features = data.shape
        if config.n_components > min(n_samples, n_features):
            raise ShapeError(
                f"n_components={config.n_components} exceeds "
                f"min(N, D)={min(n_samples, n_features)}"
            )
        tracer = get_tracer()
        with tracer.span(
            "run",
            f"spca.fit[N={n_samples},D={n_features},d={config.n_components}]",
            n_samples=n_samples,
            n_features=n_features,
            n_components=config.n_components,
            backend=type(self.backend).__name__,
        ) as run_span:
            model, history = self._fit_traced(data, tracer)
            run_span.set(
                stop_reason=history.stop_reason,
                n_iterations=history.n_iterations,
            )
        return model, history

    def _fit_traced(
        self, data: Matrix, tracer
    ) -> tuple[PCAModel, TrainingHistory]:
        config = self.config
        n_samples, n_features = data.shape
        rng = np.random.default_rng(config.seed)
        started = time.perf_counter()
        sim_start = self.backend.simulated_seconds
        bytes_start = self.backend.intermediate_bytes

        components, noise_variance = self._initialize(data, rng)
        dataset = self.backend.load(data)
        mean = self.backend.column_means(dataset)            # meanJob
        ss1 = self.backend.frobenius_centered(dataset, mean)  # FnormJob

        identity = np.eye(config.n_components)
        history = TrainingHistory()
        tracker = ConvergenceTracker(
            max_iterations=config.max_iterations,
            tolerance=config.tolerance,
            target_accuracy=config.target_accuracy,
            ideal_accuracy=config.ideal_accuracy,
        )
        previous_ss = None
        for iteration in range(1, config.max_iterations + 1):
            with tracer.span(
                "iteration", f"iteration[{iteration}]", index=iteration
            ) as iter_span:
                moment = components.T @ components + noise_variance * identity
                moment_inv = np.linalg.inv(moment)
                projector = components @ moment_inv           # CM = C * M^-1
                latent_mean = mean @ projector                # Xm = Ym * CM
                previous_components = components

                if config.use_job_consolidation:
                    ytx, xtx = self.backend.ytx_xtx(
                        dataset, mean, projector, latent_mean
                    )
                else:
                    # Ablation: two separate distributed passes (Figure 2
                    # before the consolidation of Figure 3).
                    _, xtx = self.backend.ytx_xtx(dataset, mean, projector, latent_mean)
                    ytx, _ = self.backend.ytx_xtx(dataset, mean, projector, latent_mean)
                xtx = xtx + n_samples * noise_variance * moment_inv
                components = ytx @ np.linalg.inv(xtx)         # C = YtX / XtX
                ss2 = float(np.trace(xtx @ components.T @ components))
                ss3 = self.backend.ss3(
                    dataset, mean, projector, latent_mean, components
                )
                noise_variance = max(
                    (ss1 + ss2 - 2.0 * ss3) / (n_samples * n_features), 1e-12
                )

                error = None
                if config.compute_error_every_iteration:
                    error = self.backend.reconstruction_error(
                        dataset, mean, components, config.error_sample_fraction, rng
                    )
                stats = IterationStats(
                    index=iteration,
                    noise_variance=noise_variance,
                    error=error,
                    accuracy=None if error is None else 1.0 - error,
                    elapsed_seconds=time.perf_counter() - started,
                    simulated_seconds=self.backend.simulated_seconds - sim_start,
                    intermediate_bytes=self.backend.intermediate_bytes - bytes_start,
                )
                history.append(stats)
                if tracer.enabled:
                    denom = float(np.linalg.norm(previous_components))
                    subspace_delta = (
                        float(np.linalg.norm(components - previous_components)) / denom
                        if denom > 0.0
                        else float("inf")
                    )
                    iter_span.set(
                        objective=noise_variance,
                        convergence_delta=(
                            None
                            if previous_ss is None
                            else abs(previous_ss - noise_variance)
                        ),
                        subspace_delta=subspace_delta,
                        error=error,
                        accuracy=stats.accuracy,
                        intermediate_bytes=stats.intermediate_bytes,
                    )
                previous_ss = noise_variance
                if tracker.update(error):
                    break
        history.stop_reason = tracker.stop_reason or "max_iterations"

        model = PCAModel(
            components=components,
            mean=mean,
            noise_variance=noise_variance,
            n_samples=n_samples,
        )
        return model, history

    def _initialize(
        self, data: Matrix, rng: np.random.Generator
    ) -> tuple[np.ndarray, float]:
        config = self.config
        if not config.smart_init:
            return random_initialization(data.shape[1], config.n_components, rng)

        def fit_sample(sample):
            model = fit_ppca(
                sample,
                config.n_components,
                max_iterations=config.smart_init_iterations,
                seed=config.seed,
            )
            return model.components, model.noise_variance

        return smart_guess_initialization(
            data, fit_sample, config.smart_init_fraction, rng
        )
