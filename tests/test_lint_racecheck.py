"""The dynamic race detector: finds planted races, passes clean fits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.spark import SparkBackend
from repro.core import SPCA, SPCAConfig
from repro.engine.exec import make_executor
from repro.engine.spark.context import SparkContext
from repro.faults import PlannedFaults
from repro.faults.plan import ExecutorLoss, FaultPlan
from repro.lint.racecheck import (
    RaceChecker,
    RaceCheckExecutor,
    RaceRecorder,
    run_spca_racecheck,
)


def _small_fit_data():
    rng = np.random.default_rng(7)
    return rng.normal(size=(96, 12)) @ rng.normal(size=(12, 12))


# ---------------------------------------------------------------------------
# the recorder + happens-before analysis in isolation


class TestRecorderAnalysis:
    def test_driver_accesses_are_not_recorded(self):
        recorder = RaceRecorder()
        recorder.begin_epoch("stage")
        recorder.record("BlockManager", (0, 0), "write")  # no task active
        assert recorder.accesses == []
        assert recorder.conflicts() == []

    def test_unscoped_write_is_a_conflict(self):
        recorder = RaceRecorder()
        recorder.begin_epoch("stage")
        recorder.enter_task(3)
        recorder.record("BlockManager", (0, 0), "write")
        recorder.exit_task()
        conflicts = recorder.conflicts()
        assert [c.kind for c in conflicts] == ["unscoped-write"]
        assert conflicts[0].tasks == (3,)
        assert "stage" in conflicts[0].render()

    def test_cross_task_read_write_is_a_race(self):
        recorder = RaceRecorder()
        recorder.begin_epoch("stage")
        recorder.enter_task(0)
        recorder.record("lost_blocks", (1, 2), "write")
        recorder.exit_task()
        recorder.enter_task(1)
        recorder.record("lost_blocks", (1, 2), "read")
        recorder.exit_task()
        kinds = {c.kind for c in recorder.conflicts()}
        assert kinds == {"unscoped-write", "race"}

    def test_concurrent_reads_are_clean(self):
        recorder = RaceRecorder()
        recorder.begin_epoch("stage")
        for task in range(4):
            recorder.enter_task(task)
            recorder.record("BlockManager", (0, 0), "read")
            recorder.exit_task()
        assert recorder.conflicts() == []

    def test_epochs_order_accesses(self):
        # Same key, two different epochs: the join/dispatch barrier between
        # them orders the accesses, so no race.
        recorder = RaceRecorder()
        recorder.begin_epoch("stage1")
        recorder.enter_task(0)
        recorder.record("sizeof_memo", 42, "write", 100)
        recorder.exit_task()
        recorder.begin_epoch("stage2")
        recorder.enter_task(1)
        recorder.record("sizeof_memo", 42, "write", 200)
        recorder.exit_task()
        assert recorder.conflicts() == []

    def test_idempotent_policy_allows_agreeing_writes(self):
        recorder = RaceRecorder()
        recorder.begin_epoch("stage")
        for task in range(3):
            recorder.enter_task(task)
            recorder.record("sizeof_memo", 42, "write", 100)
            recorder.exit_task()
        assert recorder.conflicts() == []

    def test_idempotent_policy_flags_disagreeing_writes(self):
        recorder = RaceRecorder()
        recorder.begin_epoch("stage")
        recorder.enter_task(0)
        recorder.record("sizeof_memo", 42, "write", 100)
        recorder.exit_task()
        recorder.enter_task(1)
        recorder.record("sizeof_memo", 42, "write", 999)
        recorder.exit_task()
        conflicts = recorder.conflicts()
        assert [c.kind for c in conflicts] == ["conflicting-write"]
        assert "aliasing" in conflicts[0].detail

    def test_wildcard_eviction_races_with_keyed_access(self):
        recorder = RaceRecorder()
        recorder.begin_epoch("stage")
        recorder.enter_task(0)
        recorder.record("BlockManager", "*", "write")
        recorder.exit_task()
        recorder.enter_task(1)
        recorder.record("BlockManager", (0, 5), "read")
        recorder.exit_task()
        kinds = {c.kind for c in recorder.conflicts()}
        assert kinds == {"unscoped-write", "race"}


# ---------------------------------------------------------------------------
# the instrumented harness end-to-end


class TestRaceCheckerHarness:
    def test_detects_synthetic_block_manager_race(self):
        # A partition function that writes the BlockManager directly from
        # inside its (concurrently-executing) task: the canonical violation
        # of the execute/commit protocol.
        ctx = SparkContext(executor=make_executor("threads", 4))
        try:
            rdd = ctx.parallelize(list(range(32)), num_partitions=8)

            def rogue(partition):
                ctx.block_manager.put(999, partition[0], partition, 64)
                return sum(partition)

            with RaceChecker(ctx, label="synthetic") as checker:
                ctx.run_job(rdd, rogue, name="rogueStage")
            report = checker.report()
            assert not report.clean
            kinds = {c.kind for c in report.conflicts}
            assert "unscoped-write" in kinds
            assert any(c.obj == "BlockManager" for c in report.conflicts)
        finally:
            ctx.executor.shutdown()

    def test_detects_synthetic_accumulator_bypass(self):
        # Calling _apply directly (instead of add, which stages through the
        # scope) double-applies under retry; the checker flags it.
        ctx = SparkContext(executor=make_executor("threads", 4))
        try:
            rdd = ctx.parallelize(list(range(16)), num_partitions=4)
            counter = ctx.accumulator(0)

            def rogue(partition):
                counter._apply(len(partition))
                return sum(partition)

            with RaceChecker(ctx, label="synthetic") as checker:
                ctx.run_job(rdd, rogue, name="rogueStage")
            assert any(
                c.obj == "Accumulator" and c.kind == "unscoped-write"
                for c in checker.report().conflicts
            )
        finally:
            ctx.executor.shutdown()

    def test_instrumentation_is_restored_on_exit(self):
        from repro.engine import serde
        from repro.engine.spark.memory import BlockManager

        original_put = BlockManager.put
        ctx = SparkContext(executor=make_executor("threads", 2))
        try:
            with RaceChecker(ctx):
                assert BlockManager.put is not original_put
                assert isinstance(ctx.executor, RaceCheckExecutor)
            assert BlockManager.put is original_put
            assert not isinstance(ctx.executor, RaceCheckExecutor)
            assert serde._memo_observer is None
            assert type(ctx._lost_blocks) is set
        finally:
            ctx.executor.shutdown()

    def test_clean_fit_with_executor_loss_recovery(self):
        # Lineage recovery under a concurrent executor was the real finding
        # this harness surfaced (tasks discarded from the shared lost-block
        # set mid-flight); this pins the fixed behaviour.
        plan = FaultPlan(events=(ExecutorLoss(job="YtXJob", executor=1, occurrence=0),))
        ctx = SparkContext(
            executor=make_executor("threads", 4), faults=PlannedFaults(plan)
        )
        config = SPCAConfig(n_components=3, max_iterations=3, seed=0)
        try:
            with RaceChecker(ctx, label="executor-loss") as checker:
                SPCA(config, SparkBackend(config, context=ctx)).fit(_small_fit_data())
            report = checker.report()
            assert report.accesses > 0
            assert report.clean, [c.render() for c in report.conflicts]
        finally:
            ctx.executor.shutdown()


# ---------------------------------------------------------------------------
# acceptance: full sPCA fits pass clean under both concurrent executors


@pytest.mark.parametrize("executor_name", ["threads", "processes"])
def test_spca_fit_racechecks_clean(executor_name):
    reports = run_spca_racecheck(executor_name=executor_name, workers=4)
    assert len(reports) == 3
    assert {report.label for report in reports} == {
        f"mapreduce/{executor_name}",
        f"mapreduce-resident/{executor_name}",
        f"spark/{executor_name}",
    }
    for report in reports:
        assert report.clean, (
            report.label,
            [conflict.render() for conflict in report.conflicts],
        )
    # The spark engine's scoped path genuinely exercises the watched state.
    spark_report = next(r for r in reports if r.label.startswith("spark/"))
    assert spark_report.accesses > 0
