"""Model log-likelihood and BIC-based dimensionality selection."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import fit_ppca
from repro.core.selection import choose_n_components, score_candidates
from repro.errors import ShapeError


def lowrank(n, d_cols, rank, noise, seed):
    rng = np.random.default_rng(seed)
    factors = rng.normal(size=(n, rank)) * np.sqrt(np.arange(rank, 0, -1) * 4.0)
    loadings = rng.normal(size=(rank, d_cols))
    return factors @ loadings + noise * rng.normal(size=(n, d_cols)) + rng.normal(size=d_cols)


class TestLogLikelihood:
    def test_matches_explicit_gaussian(self):
        data = lowrank(150, 8, 2, 0.3, seed=1)
        model = fit_ppca(data, 2, max_iterations=100, tolerance=1e-10, seed=2)
        # Explicit dense evaluation of the same Gaussian.
        cov = model.components @ model.components.T + model.noise_variance * np.eye(8)
        centered = data - model.mean
        sign, logdet = np.linalg.slogdet(cov)
        inv = np.linalg.inv(cov)
        explicit = -0.5 * sum(
            8 * np.log(2 * np.pi) + logdet + row @ inv @ row for row in centered
        )
        assert model.log_likelihood(data) == pytest.approx(explicit, rel=1e-8)

    def test_sparse_input(self):
        matrix = sp.random(100, 15, density=0.3, random_state=3, format="csr")
        model = fit_ppca(matrix, 2, max_iterations=40, seed=4)
        sparse_ll = model.log_likelihood(matrix)
        dense_ll = model.log_likelihood(np.asarray(matrix.todense()))
        assert sparse_ll == pytest.approx(dense_ll, rel=1e-10)

    def test_training_data_likelier_than_noise(self):
        data = lowrank(200, 10, 3, 0.1, seed=5)
        model = fit_ppca(data, 3, max_iterations=100, seed=6)
        rng = np.random.default_rng(7)
        garbage = rng.normal(scale=10.0, size=(200, 10))
        assert model.log_likelihood(data) > model.log_likelihood(garbage)

    def test_shape_mismatch(self):
        data = lowrank(50, 6, 2, 0.1, seed=8)
        model = fit_ppca(data, 2, max_iterations=20, seed=9)
        with pytest.raises(ShapeError):
            model.log_likelihood(np.ones((5, 9)))


class TestSelection:
    def test_recovers_true_rank(self):
        data = lowrank(500, 12, 3, 0.15, seed=10)
        chosen = choose_n_components(data, candidates=range(1, 7), seed=11)
        assert chosen == 3

    def test_scores_are_complete_and_ordered(self):
        data = lowrank(200, 10, 2, 0.2, seed=12)
        scores = score_candidates(data, [1, 2, 4], seed=13)
        assert [s.n_components for s in scores] == [1, 2, 4]
        assert all(np.isfinite(s.bic) for s in scores)
        # Likelihood is non-decreasing in model capacity on training data.
        assert scores[1].log_likelihood >= scores[0].log_likelihood - 1e-6

    def test_validation(self):
        data = lowrank(20, 6, 2, 0.1, seed=14)
        with pytest.raises(ShapeError):
            score_candidates(data, [])
        with pytest.raises(ShapeError):
            score_candidates(data, [0, 2])
        with pytest.raises(ShapeError):
            score_candidates(data, [2, 6])
