"""Mean-propagated linear operators.

:class:`CenteredOperator` presents ``Yc = Y - 1*Ym'`` as a
``scipy.sparse.linalg.LinearOperator`` without ever forming it: matrix-
vector products fold the mean in algebraically, exactly like sPCA's mean
propagation (Section 3.1) but packaged for iterative solvers (svds, Lanczos,
LSQR, ...).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix
from repro.linalg.stats import column_means


class CenteredOperator(spla.LinearOperator):
    """``(Y - 1*mean') @ v`` and its adjoint, computed by propagation.

    Args:
        data: the raw (possibly sparse) matrix Y.
        mean: the column-mean vector; computed from *data* when omitted.
    """

    def __init__(self, data: Matrix, mean: np.ndarray | None = None):
        if data.ndim != 2:
            raise ShapeError("data must be a 2-D matrix")
        if mean is None:
            mean = column_means(data)
        mean = np.asarray(mean, dtype=np.float64).ravel()
        if mean.shape[0] != data.shape[1]:
            raise ShapeError(
                f"mean has length {mean.shape[0]} but the matrix has "
                f"{data.shape[1]} columns"
            )
        self.data = data
        self.mean = mean
        super().__init__(dtype=np.float64, shape=data.shape)

    def _matvec(self, vec: np.ndarray) -> np.ndarray:
        vec = np.asarray(vec).ravel()
        return np.asarray(self.data @ vec).ravel() - float(self.mean @ vec)

    def _rmatvec(self, vec: np.ndarray) -> np.ndarray:
        vec = np.asarray(vec).ravel()
        return np.asarray(self.data.T @ vec).ravel() - self.mean * float(vec.sum())

    def _matmat(self, mat: np.ndarray) -> np.ndarray:
        mat = np.asarray(mat)
        return np.asarray(self.data @ mat) - np.outer(
            np.ones(self.shape[0]), self.mean @ mat
        )

    def top_singular_subspace(self, k: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exact truncated SVD of the centered matrix via ARPACK.

        Returns (U, s, Vt) with singular values descending.
        """
        budget = min(self.shape) - 1
        if not 1 <= k <= budget:
            raise ShapeError(f"k must be in [1, {budget}], got {k}")
        rng = np.random.default_rng(seed)
        u, s, vt = spla.svds(self, k=k, v0=rng.normal(size=min(self.shape)))
        order = np.argsort(s)[::-1]
        return u[:, order], s[order], vt[order]
