"""Sequential stochastic SVD (Halko's randomized method, Section 2.3).

The algorithm behind Mahout's SSVD: project the input through a random
Gaussian test matrix to get a tall-thin sketch, orthonormalize it, form the
small matrix ``B = Q' A`` and take its exact SVD.  Accuracy improves with
oversampling and with power iterations (each power iteration multiplies the
spectral decay of the error by the square of the singular-value gaps).

Supports the *PCA option*: a mean vector can be supplied and is propagated
through the sketching products without centering the (sparse) input, just
as Mahout's ``--pca`` flag stores the mean separately (Section 2.3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix


def _centered_times(data: Matrix, mean: np.ndarray | None, right: np.ndarray) -> np.ndarray:
    product = np.asarray(data @ right)
    if mean is not None:
        product = product - mean @ right
    return product


def _centered_transpose_times(data: Matrix, mean: np.ndarray | None, left: np.ndarray) -> np.ndarray:
    product = np.asarray(data.T @ left)
    if mean is not None:
        product = product - np.outer(mean, left.sum(axis=0))
    return product


def stochastic_svd(
    data: Matrix,
    rank: int,
    oversampling: int = 10,
    power_iterations: int = 1,
    seed: int = 0,
    mean: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized truncated SVD of (optionally mean-centered) *data*.

    Args:
        data: input matrix A, shape (N, D), sparse or dense.
        rank: number of singular triplets to return.
        oversampling: extra sketch columns p; the sketch has rank + p.
        power_iterations: subspace-iteration refinements q.
        seed: seed for the Gaussian test matrix.
        mean: optional column-mean vector; when given, the SVD is of
            ``A - 1*mean'`` computed by mean propagation.

    Returns:
        (U, s, Vt) with U of shape (N, rank), s of length rank, and Vt of
        shape (rank, D), singular values descending.
    """
    n_rows, n_cols = data.shape
    if rank < 1:
        raise ShapeError(f"rank must be >= 1, got {rank}")
    sketch_size = rank + max(0, oversampling)
    if sketch_size > min(n_rows, n_cols):
        sketch_size = min(n_rows, n_cols)
    if rank > sketch_size:
        raise ShapeError(
            f"rank={rank} exceeds the sketch budget min(N, D)={sketch_size}"
        )
    if mean is not None:
        mean = np.asarray(mean, dtype=np.float64).ravel()
        if mean.shape[0] != n_cols:
            raise ShapeError(
                f"mean has length {mean.shape[0]} but data has {n_cols} columns"
            )

    rng = np.random.default_rng(seed)
    test_matrix = rng.normal(size=(n_cols, sketch_size))
    sketch = _centered_times(data, mean, test_matrix)
    basis, _ = np.linalg.qr(sketch)
    for _ in range(max(0, power_iterations)):
        projected = _centered_transpose_times(data, mean, basis)
        basis, _ = np.linalg.qr(_centered_times(data, mean, projected))
    small = _centered_transpose_times(data, mean, basis).T  # B = Q' A
    u_small, singular_values, vt = np.linalg.svd(small, full_matrices=False)
    left = basis @ u_small
    return left[:, :rank], singular_values[:rank], vt[:rank]
