"""Edge cases and invariances of the core algorithms."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.backends import SequentialBackend
from repro.core import SPCA, SPCAConfig, fit_ppca
from repro.errors import ShapeError
from repro.metrics import subspace_angle_degrees


class TestDegenerateInputs:
    def test_all_zero_matrix(self):
        model = fit_ppca(np.zeros((20, 6)), 2, max_iterations=10, seed=0)
        assert np.isfinite(model.components).all()
        assert model.noise_variance >= 0.0

    def test_constant_columns(self):
        data = np.ones((30, 5)) * np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        model = fit_ppca(data, 2, max_iterations=10, seed=1)
        # Centered data is exactly zero: reconstruction is the mean.
        np.testing.assert_allclose(model.reconstruct(data), data, atol=1e-6)

    def test_single_informative_direction(self):
        rng = np.random.default_rng(2)
        direction = rng.normal(size=8)
        data = np.outer(rng.normal(size=100), direction)
        model = fit_ppca(data, 1, max_iterations=100, tolerance=1e-12, seed=3)
        angle = subspace_angle_degrees(model.basis, direction.reshape(-1, 1))
        assert angle < 0.5

    def test_d_equals_min_dimension(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(6, 10))
        model = fit_ppca(data, 6, max_iterations=20, seed=5)
        assert model.components.shape == (10, 6)

    def test_more_columns_than_rows(self):
        rng = np.random.default_rng(6)
        data = rng.normal(size=(15, 60))
        model, history = SPCA(
            SPCAConfig(n_components=3, max_iterations=10, seed=7)
        ).fit(data)
        assert model.components.shape == (60, 3)
        assert history.n_iterations >= 1

    def test_single_row_rejected_for_multi_component(self):
        with pytest.raises(ShapeError):
            fit_ppca(np.ones((1, 5)), 2)

    def test_spca_on_tiny_sparse(self):
        matrix = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 2.0], [1.0, 2.0]]))
        model, _ = SPCA(SPCAConfig(n_components=1, max_iterations=5, seed=8)).fit(matrix)
        assert model.components.shape == (2, 1)


class TestInvariances:
    def test_column_permutation_equivariance(self):
        rng = np.random.default_rng(9)
        data = rng.normal(size=(200, 4)) @ rng.normal(size=(4, 12))
        permutation = rng.permutation(12)
        config = SPCAConfig(n_components=3, max_iterations=50, tolerance=1e-10,
                            seed=10, compute_error_every_iteration=False)
        base, _ = SPCA(config).fit(data)
        permuted, _ = SPCA(config).fit(data[:, permutation])
        # The recovered subspaces relate by the same column permutation.
        angle = subspace_angle_degrees(base.basis[permutation], permuted.basis)
        assert angle < 1.0

    def test_row_shuffle_invariance(self):
        rng = np.random.default_rng(11)
        data = rng.normal(size=(150, 4)) @ rng.normal(size=(4, 10))
        config = SPCAConfig(n_components=2, max_iterations=60, tolerance=1e-10,
                            seed=12, compute_error_every_iteration=False)
        base, _ = SPCA(config).fit(data)
        shuffled, _ = SPCA(config).fit(data[rng.permutation(150)])
        assert subspace_angle_degrees(base.basis, shuffled.basis) < 1.0

    def test_global_scaling_scales_components_subspace(self):
        rng = np.random.default_rng(13)
        data = rng.normal(size=(120, 4)) @ rng.normal(size=(4, 9))
        config = SPCAConfig(n_components=2, max_iterations=60, tolerance=1e-10,
                            seed=14, compute_error_every_iteration=False)
        base, _ = SPCA(config).fit(data)
        scaled, _ = SPCA(config).fit(7.5 * data)
        assert subspace_angle_degrees(base.basis, scaled.basis) < 1.0

    def test_block_count_does_not_change_result(self):
        matrix = sp.random(90, 14, density=0.3, random_state=15, format="csr")
        config = SPCAConfig(n_components=2, max_iterations=6, tolerance=0.0,
                            seed=16, compute_error_every_iteration=False)
        few, _ = SPCA(config, SequentialBackend(config, num_blocks=2)).fit(matrix)
        many, _ = SPCA(config, SequentialBackend(config, num_blocks=30)).fit(matrix)
        np.testing.assert_allclose(few.components, many.components, atol=1e-9)


class TestNumericalStability:
    def test_huge_value_scale(self):
        rng = np.random.default_rng(17)
        data = 1e8 * (rng.normal(size=(80, 3)) @ rng.normal(size=(3, 8)))
        model = fit_ppca(data, 2, max_iterations=50, seed=18)
        assert np.isfinite(model.components).all()
        assert np.isfinite(model.noise_variance)

    def test_tiny_value_scale(self):
        rng = np.random.default_rng(19)
        data = 1e-8 * (rng.normal(size=(80, 3)) @ rng.normal(size=(3, 8)))
        model = fit_ppca(data, 2, max_iterations=50, seed=20)
        assert np.isfinite(model.components).all()

    def test_noise_free_exact_lowrank(self):
        rng = np.random.default_rng(21)
        data = rng.normal(size=(100, 2)) @ rng.normal(size=(2, 10))
        model = fit_ppca(data, 2, max_iterations=200, tolerance=1e-14, seed=22)
        # Residual variance collapses towards zero without blowing up EM.
        assert model.noise_variance < 1e-6
        centered = data - data.mean(axis=0)
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        assert subspace_angle_degrees(model.basis, vt[:2].T) < 0.5


class TestSparseFormatTolerance:
    def test_coo_and_csc_inputs_accepted(self):
        import scipy.sparse as sp

        from repro.core import SPCA, SPCAConfig

        base = sp.random(80, 12, density=0.3, random_state=23, format="coo")
        config = SPCAConfig(n_components=2, max_iterations=4, tolerance=0.0,
                            seed=24, compute_error_every_iteration=False)
        from_coo, _ = SPCA(config).fit(base.tocoo())
        from_csc, _ = SPCA(config).fit(base.tocsc())
        from_csr, _ = SPCA(config).fit(base.tocsr())
        import numpy as np

        np.testing.assert_allclose(from_coo.components, from_csr.components, atol=1e-9)
        np.testing.assert_allclose(from_csc.components, from_csr.components, atol=1e-9)
