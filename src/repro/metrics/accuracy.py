"""The paper's accuracy metric: sampled relative 1-norm reconstruction error.

Section 5 defines ``e = ||Yr - Xr*C^-1||_1 / ||Yr||_1`` over a random row
subset Yr, where ``||A||_1`` is the matrix 1-norm (maximum absolute column
sum) and ``C^-1`` denotes mapping the latent rows back to data space; we use
the least-squares projection ``Xr = Yc_r C (C'C)^-1`` and reconstruction
``Xr C' + Ym``, matching the released sPCA code.  Accuracy is ``1 - e`` and
is reported as a percentage of the *ideal* accuracy, the accuracy an exact
rank-d PCA achieves on the same data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg.blocks import Matrix, is_sparse
from repro.linalg.centered import centered_times
from repro.linalg.operators import CenteredOperator
from repro.linalg.stats import column_means, sample_rows


def reconstruction_error(
    data: Matrix,
    components: np.ndarray,
    mean: np.ndarray | None = None,
    sample_fraction: float = 1.0,
    rng: np.random.Generator | None = None,
) -> float:
    """Relative matrix-1-norm reconstruction error on sampled rows.

    Args:
        data: the input matrix Y (rows are observations).
        components: D x d transformation matrix C.
        mean: column means; computed from *data* when omitted.
        sample_fraction: fraction of rows to score (1.0 = all rows).
        rng: generator for the row sample; required when sampling.

    Returns:
        ``||Yr - Yhat||_1 / ||Yr||_1`` over the sampled rows, where
        ``||A||_1`` is the induced matrix 1-norm (max absolute column sum).
    """
    components = np.asarray(components, dtype=np.float64)
    if components.ndim != 2 or components.shape[0] != data.shape[1]:
        raise ShapeError(
            f"components shape {components.shape} does not match data with "
            f"{data.shape[1]} columns"
        )
    if mean is None:
        mean = column_means(data)
    rows = data
    if sample_fraction < 1.0:
        if rng is None:
            raise ShapeError("sampling requires an rng")
        rows = sample_rows(data, sample_fraction, rng)
    ls_projector = components @ np.linalg.inv(components.T @ components)
    latent = centered_times(rows, mean, ls_projector)
    reconstruction = latent @ components.T + mean
    dense = np.asarray(rows.todense()) if is_sparse(rows) else np.asarray(rows, dtype=np.float64)
    residual_colsums = np.abs(dense - reconstruction).sum(axis=0)
    magnitude_colsums = np.abs(dense).sum(axis=0)
    return float(residual_colsums.max()) / max(float(magnitude_colsums.max()), 1e-300)


def accuracy_from_error(error: float) -> float:
    """Accuracy as the paper plots it: ``1 - e``."""
    return 1.0 - error


def ideal_accuracy(
    data: Matrix,
    n_components: int,
    mean: np.ndarray | None = None,
    sample_fraction: float = 1.0,
    rng: np.random.Generator | None = None,
) -> float:
    """Accuracy of an exact rank-d PCA on the same data.

    Computes the top-d singular subspace of the *centered* matrix without
    densifying it, using a mean-propagated LinearOperator -- the same trick
    sPCA uses, applied to exact SVD.
    """
    if mean is None:
        mean = column_means(data)
    n_rows, n_cols = data.shape
    rank_budget = min(n_rows, n_cols) - 1
    if n_components > rank_budget:
        raise ShapeError(
            f"n_components={n_components} needs min(N, D) > {n_components}"
        )
    mean = np.asarray(mean, dtype=np.float64)
    operator = CenteredOperator(data, mean)
    _, _, vt = operator.top_singular_subspace(n_components)
    exact_components = vt.T
    return accuracy_from_error(
        reconstruction_error(data, exact_components, mean, sample_fraction, rng)
    )


def percent_of_ideal(accuracy: float, ideal: float) -> float:
    """Accuracy as a percentage of the ideal (the y-axis of Figures 4-5)."""
    if ideal <= 0.0:
        raise ShapeError(f"ideal accuracy must be positive, got {ideal}")
    return 100.0 * accuracy / ideal
