"""Incremental (mini-batch) PPCA and the shared stochastic-EM step.

A natural extension of sPCA's design (its per-iteration state is only the
small ``(C, ss)`` pair, independent of N): instead of full-data EM passes,
process the rows in mini-batches and blend each batch's sufficient
statistics into running averages with a decaying step size.  This fits
datasets that stream in or do not fit in memory, at the cost of stochastic
rather than monotone convergence.

The update is stochastic EM (sEM): for batch t with step size
``eta_t = (t + 2)^(-kappa)``, the running moments are

    S_yx <- (1 - eta) * S_yx + eta * (Yc_t' X_t / |batch|)
    S_xx <- (1 - eta) * S_xx + eta * (X_t' X_t / |batch| + ss * M^-1)

and the M-step solves ``C = S_yx S_xx^-1`` exactly as in full EM.

The recursion is factored into two halves so that the distributed stream
runner (:mod:`repro.stream`) and the in-process entry points below share one
reference implementation:

- :func:`sem_batch_statistics` touches the rows once and reduces them to
  d-sized sufficient statistics (:class:`SEMBatchStats`).  This is the part
  an engine job computes worker-side.
- :func:`sem_blend` folds those statistics into the carried
  :class:`SEMState` using only small-matrix arithmetic, so the driver can
  apply it without ever seeing the rows.

In trace mode even the residual-variance update runs on d x d matrices:
``||Yc - X C'||_F^2 = ||Yc||^2 - 2 tr(C' Yc'X) + tr((X'X + n ss M^-1) C'C)``
with ``tr(C' Yc'X) = sum(C * (Yc'X))`` elementwise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.core.model import PCAModel
from repro.errors import ShapeError
from repro.linalg.blocks import Matrix
from repro.linalg.centered import centered_times, centered_transpose_times
from repro.linalg.frobenius import frobenius_sparse
from repro.linalg.stats import column_means

RESIDUAL_MODES = ("auto", "dense", "trace")

# Below this many columns the dense residual (materialize Yc once per batch)
# is cheaper than the three extra small products of the trace identity.
DENSE_RESIDUAL_MAX_COLS = 512


@dataclass(frozen=True)
class SEMState:
    """Everything the stochastic-EM recursion carries between batches.

    The state is intentionally small -- ``O(D d)`` like the paper's ``(C, ss)``
    pair -- so a stream driver can broadcast it per window and checkpoint it
    cheaply.  ``moment_yx`` / ``moment_xx`` are ``None`` before the first
    batch (the first batch initializes the running moments directly).
    """

    components: np.ndarray
    noise_variance: float
    mean: np.ndarray
    moment_yx: np.ndarray | None = None
    moment_xx: np.ndarray | None = None
    step_index: int = 0
    rows_seen: int = 0

    @property
    def n_components(self) -> int:
        return self.components.shape[1]

    @property
    def n_cols(self) -> int:
        return self.components.shape[0]

    def to_model(self, n_samples: int | None = None) -> PCAModel:
        """Freeze the state into a :class:`PCAModel`."""
        return PCAModel(
            components=self.components,
            mean=self.mean,
            noise_variance=self.noise_variance,
            n_samples=self.rows_seen if n_samples is None else n_samples,
        )


def initial_sem_state(
    n_components: int,
    n_cols: int,
    seed: int,
    mean: np.ndarray | None = None,
) -> SEMState:
    """Seeded random-orientation start of the sEM recursion.

    When *mean* is omitted the column means start at zero and are estimated
    online (streaming average) by :func:`sem_batch_statistics`.
    """
    if n_components > n_cols:
        raise ShapeError(
            f"n_components={n_components} exceeds the column count {n_cols}"
        )
    rng = np.random.default_rng(seed)
    components = rng.normal(size=(n_cols, n_components))
    if mean is None:
        mean = np.zeros(n_cols)
    else:
        mean = np.asarray(mean, dtype=np.float64)
        if mean.shape != (n_cols,):
            raise ShapeError(f"mean has shape {mean.shape}, expected ({n_cols},)")
    return SEMState(components=components, noise_variance=1.0, mean=mean)


@dataclass(frozen=True)
class SEMBatchStats:
    """Sufficient statistics of one mini-batch against a given state.

    All fields except the optional dense-residual pair are d-sized, which is
    what lets an engine reduce a whole window of rows to a record small
    enough to ship back to the driver.
    """

    size: int
    mean: np.ndarray
    batch_yx: np.ndarray
    latent_gram: np.ndarray
    moment_inv: np.ndarray
    ss1: float
    residual: np.ndarray | None = None
    latent: np.ndarray | None = None

    def as_payload(self) -> tuple:
        """Small-field tuple for shipping through an engine job."""
        if self.residual is not None or self.latent is not None:
            raise ShapeError("dense-residual statistics cannot be shipped")
        return (
            self.size,
            self.mean,
            self.batch_yx,
            self.latent_gram,
            self.moment_inv,
            self.ss1,
        )

    @staticmethod
    def from_payload(payload: tuple) -> "SEMBatchStats":
        size, mean, batch_yx, latent_gram, moment_inv, ss1 = payload
        return SEMBatchStats(
            size=int(size),
            mean=mean,
            batch_yx=batch_yx,
            latent_gram=latent_gram,
            moment_inv=moment_inv,
            ss1=float(ss1),
        )


def sem_batch_statistics(
    batch: Matrix,
    state: SEMState,
    *,
    update_mean: bool,
    residual: str = "trace",
) -> SEMBatchStats:
    """E-step over one batch: reduce the rows to sufficient statistics.

    Args:
        batch: ``(n, D)`` dense or CSR rows, ``n >= 1``.
        state: the carried recursion state.
        update_mean: blend the batch's column means into the streaming mean
            estimate (the ``partial_fit_stream`` / stream-runner behaviour);
            when False the state's mean is used as-is (the ``fit``
            behaviour, where means are computed up front).
        residual: ``"trace"`` keeps every statistic d-sized via the trace
            identity; ``"dense"`` carries the centered rows for the direct
            residual; ``"auto"`` picks dense for narrow data
            (D <= ``DENSE_RESIDUAL_MAX_COLS``).
    """
    size = batch.shape[0]
    if size == 0:
        raise ShapeError("cannot compute batch statistics of an empty batch")
    if residual not in RESIDUAL_MODES:
        raise ShapeError(f"residual must be one of {RESIDUAL_MODES}, got {residual!r}")
    n_cols = batch.shape[1]
    if n_cols != state.n_cols:
        raise ShapeError(f"batch has {n_cols} columns, expected {state.n_cols}")

    mean = state.mean
    if update_mean:
        batch_mean = column_means(batch)
        mean = (state.rows_seen * mean + size * batch_mean) / (state.rows_seen + size)

    components = state.components
    ss = state.noise_variance
    moment = components.T @ components + ss * np.eye(state.n_components)
    moment_inv = np.linalg.inv(moment)
    latent = centered_times(batch, mean, components @ moment_inv)
    batch_yx = centered_transpose_times(batch, mean, latent) / size
    latent_gram = latent.T @ latent

    use_dense = residual == "dense" or (
        residual == "auto" and n_cols <= DENSE_RESIDUAL_MAX_COLS
    )
    if use_dense:
        # Center the rows directly -- the old code routed this through
        # centered_times(batch, mean, eye(D)), materializing a D x D
        # identity and paying an (n, D) @ (D, D) product for a no-op.
        dense = (
            np.asarray(batch.todense(), dtype=np.float64)
            if sp.issparse(batch)
            else np.asarray(batch, dtype=np.float64)
        )
        return SEMBatchStats(
            size=size,
            mean=mean,
            batch_yx=batch_yx,
            latent_gram=latent_gram,
            moment_inv=moment_inv,
            ss1=float("nan"),
            residual=dense - mean,
            latent=latent,
        )
    ss1 = frobenius_sparse(batch, mean)
    return SEMBatchStats(
        size=size,
        mean=mean,
        batch_yx=batch_yx,
        latent_gram=latent_gram,
        moment_inv=moment_inv,
        ss1=ss1,
    )


def sem_blend(state: SEMState, stats: SEMBatchStats, *, step_decay: float) -> SEMState:
    """M-step: fold one batch's statistics into the state.

    Only small matrices are touched, so this always runs driver-side -- even
    the residual-variance update in trace mode uses the identity
    ``tr(C' Yc'X) = sum(C * (Yc'X))`` to stay on d-sized operands.
    """
    size = stats.size
    batch_xx = stats.latent_gram / size + state.noise_variance * stats.moment_inv
    eta = (state.step_index + 2.0) ** (-step_decay)
    moment_yx = (
        stats.batch_yx
        if state.moment_yx is None
        else (1 - eta) * state.moment_yx + eta * stats.batch_yx
    )
    moment_xx = (
        batch_xx
        if state.moment_xx is None
        else (1 - eta) * state.moment_xx + eta * batch_xx
    )
    components = moment_yx @ np.linalg.inv(moment_xx)

    n_cols = components.shape[0]
    if stats.residual is not None and stats.latent is not None:
        # Expected complete-data residual, like the trace path (and the
        # paper's ss3Job): the plug-in ||Yc - X C'||^2 plus the posterior
        # covariance term n*ss*tr(M^-1 C'C).  The historical dense path
        # omitted the correction, so the two residual modes disagreed by
        # O(ss * tr(M^-1 C'C) / D).
        reconstruction = stats.latent @ components.T
        correction = (
            size
            * state.noise_variance
            * float(np.trace(stats.moment_inv @ components.T @ components))
        )
        batch_ss = (
            float(np.sum((stats.residual - reconstruction) ** 2)) + correction
        ) / (size * n_cols)
    else:
        ss3 = float(np.sum(components * stats.batch_yx)) * size
        ss2 = float(
            np.trace(
                (stats.latent_gram + size * state.noise_variance * stats.moment_inv)
                @ components.T
                @ components
            )
        )
        batch_ss = (stats.ss1 + ss2 - 2 * ss3) / (size * n_cols)
    noise_variance = max((1 - eta) * state.noise_variance + eta * batch_ss, 1e-12)
    return replace(
        state,
        components=components,
        noise_variance=noise_variance,
        mean=stats.mean,
        moment_yx=moment_yx,
        moment_xx=moment_xx,
        step_index=state.step_index + 1,
        rows_seen=state.rows_seen + size,
    )


def sem_step(
    state: SEMState,
    batch: Matrix,
    *,
    step_decay: float,
    update_mean: bool = True,
    residual: str = "trace",
) -> SEMState:
    """One full sEM update (E-step + M-step) on one batch."""
    stats = sem_batch_statistics(
        batch, state, update_mean=update_mean, residual=residual
    )
    return sem_blend(state, stats, step_decay=step_decay)


@dataclass
class IncrementalPPCA:
    """Mini-batch PPCA with stochastic EM updates.

    Args:
        n_components: latent dimensionality d.
        batch_size: rows per mini-batch.
        n_epochs: passes over the data.
        step_decay: kappa in ``eta_t = (t + 2)^-kappa``; 0.5 < kappa <= 1
            satisfies the Robbins-Monro conditions.
        seed: seed for initialization and row shuffling.
        shuffle: permute the row order each epoch in :meth:`fit`.  Disable to
            make ``fit`` a batch-sliced replay comparable to
            :meth:`partial_fit_stream`.
        residual: residual-variance path for :meth:`fit` -- ``"auto"``
            (dense for D <= 512, trace otherwise), ``"dense"``, or
            ``"trace"``.  :meth:`partial_fit_stream` always uses the trace
            identity, as the stream runner does.
    """

    n_components: int
    batch_size: int = 256
    n_epochs: int = 5
    step_decay: float = 0.7
    seed: int = 0
    shuffle: bool = True
    residual: str = "auto"

    def _validate(self) -> None:
        if self.batch_size < 1:
            raise ShapeError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.5 < self.step_decay <= 1.0:
            raise ShapeError(
                f"step_decay must be in (0.5, 1], got {self.step_decay}"
            )
        if self.residual not in RESIDUAL_MODES:
            raise ShapeError(
                f"residual must be one of {RESIDUAL_MODES}, got {self.residual!r}"
            )

    def fit(self, data: Matrix) -> PCAModel:
        """Stream over *data* in shuffled mini-batches; returns the model."""
        n_rows, n_cols = data.shape
        d = self.n_components
        if d > min(n_rows, n_cols):
            raise ShapeError(f"n_components={d} exceeds min(N, D)")
        self._validate()
        mean = column_means(data)
        state = initial_sem_state(d, n_cols, self.seed, mean=mean)
        rng = np.random.default_rng(self.seed)
        # Reproduce the historical draw order: the component init above used
        # a fresh generator, and this one re-draws it before shuffling.
        rng.normal(size=(n_cols, d))
        for _ in range(self.n_epochs):
            order = rng.permutation(n_rows) if self.shuffle else np.arange(n_rows)
            for start in range(0, n_rows, self.batch_size):
                rows = np.sort(order[start : start + self.batch_size])
                state = sem_step(
                    state,
                    data[rows],
                    step_decay=self.step_decay,
                    update_mean=False,
                    residual=self.residual,
                )
        self.model_ = state.to_model(n_samples=n_rows)
        return self.model_

    def partial_fit_stream(
        self,
        batches: Iterable[Matrix],
        n_cols: int,
        mean: np.ndarray | None = None,
    ) -> PCAModel:
        """Fit from an iterable of row batches without materializing them.

        This is the sequential reference implementation that the distributed
        stream runner (:mod:`repro.stream`) is property-tested against,
        bitwise.

        Args:
            batches: iterable of (n_i, D) dense or sparse row blocks.  Empty
                (zero-row) batches are skipped.
            n_cols: the number of columns D.
            mean: optional fixed column means.  When omitted (the default)
                the means are estimated online (streaming average).

        Returns:
            The fitted model (also stored as ``self.model_``).
        """
        self._validate()
        state = initial_sem_state(self.n_components, n_cols, self.seed, mean=mean)
        update_mean = mean is None
        for batch in batches:
            if batch.shape[1] != n_cols:
                raise ShapeError(
                    f"batch has {batch.shape[1]} columns, expected {n_cols}"
                )
            if batch.shape[0] == 0:
                continue
            state = sem_step(
                state,
                batch,
                step_decay=self.step_decay,
                update_mean=update_mean,
                residual="trace",
            )
        if state.rows_seen == 0:
            raise ShapeError("the batch stream was empty")
        self.model_ = state.to_model()
        return self.model_
