"""The zero-dependency metrics registry: buckets, percentiles, exports."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_EXACT_LIMIT,
    METRICS_SCHEMA,
    MetricsRegistry,
    bucket_index,
    bucket_upper_bound,
    collecting,
    get_registry,
    load_snapshot,
    merge_snapshots,
    parse_prometheus,
    set_registry,
    snapshot_percentile,
    to_prometheus,
    write_snapshot,
)


class TestBuckets:
    def test_powers_of_two_land_on_their_own_boundary(self):
        for exponent in (-10, -1, 0, 1, 10, 40):
            value = math.ldexp(1.0, exponent)
            index = bucket_index(value)
            assert bucket_upper_bound(index) == value

    def test_open_lower_closed_upper(self):
        # 2**(i-1) < value <= 2**i
        assert bucket_index(1.0) == 0
        assert bucket_index(1.0001) == 1
        assert bucket_index(2.0) == 1
        assert bucket_index(2.0001) == 2

    def test_nonpositive_values_underflow(self):
        assert bucket_index(0.0) is None
        assert bucket_index(-3.5) is None
        assert bucket_upper_bound(None) == 0.0

    @given(st.floats(min_value=1e-30, max_value=1e30))
    def test_value_always_inside_its_bucket(self, value):
        index = bucket_index(value)
        upper = bucket_upper_bound(index)
        assert value <= upper
        assert value > upper / 2.0


class TestCountersAndGauges:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", kind="a")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_sets_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x_total", kind="a").inc(1)
        registry.counter("x_total", kind="b").inc(2)
        assert registry.counter_total("x_total") == 3
        assert registry.find_counter("x_total", kind="a").value == 1
        assert registry.find_counter("x_total", kind="c") is None

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("x_total", a="1", b="2").inc()
        assert registry.counter("x_total", b="2", a="1").value == 1

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("occupancy", executor="threads")
        assert gauge.value is None
        gauge.set(0.5)
        gauge.set(0.75)
        assert gauge.value == 0.75
        assert [g.value for g in registry.gauge_values("occupancy")] == [0.75]

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", **{"bad-label": "x"})

    def test_disabled_registry_hands_back_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("x_total").inc(5)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == []
        assert snapshot["gauges"] == []
        assert snapshot["histograms"] == []


class TestHistogramPercentiles:
    def test_empty_histogram_percentiles_are_none(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.percentile(50) is None
        assert histogram.percentiles() == {
            "p50": None, "p90": None, "p99": None, "exact": True,
        }

    def test_exact_nearest_rank_on_known_distribution(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        assert histogram.exact
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(90) == 90.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(1) == 1.0

    def test_single_observation_is_every_percentile(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(7.25)
        for q in (1, 50, 90, 99, 100):
            assert histogram.percentile(q) == 7.25

    def test_percentile_out_of_range_rejected(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.percentile(0)
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_beyond_exact_limit_degrades_to_bucket_bound(self):
        registry = MetricsRegistry(exact_limit=4)
        histogram = registry.histogram("h")
        for value in (1.5, 2.5, 3.5, 4.5, 5.5, 6.5):
            histogram.observe(value)
        assert not histogram.exact
        # Rank-based estimate: the p99 rank lands in the (4, 8] bucket.
        assert histogram.percentile(99) == 8.0
        # The snapshot drops raw values once inexact.
        entry = registry.snapshot()["histograms"][0]
        assert entry["values"] is None
        assert entry["exact"] is False
        assert snapshot_percentile(entry, 99) == 8.0

    def test_sum_accumulates_in_recording_order(self):
        histogram = MetricsRegistry().histogram("h")
        values = [0.1, 0.2, 0.3]
        expected = 0.0
        for value in values:
            histogram.observe(value)
            expected += value
        assert histogram.sum == expected  # float-exact, same order

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e6), min_size=1,
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_exact_percentile_matches_sorted_order_statistic(self, values):
        histogram = MetricsRegistry().histogram("h")
        for value in values:
            histogram.observe(value)
        ordered = sorted(values)
        for q in (1, 25, 50, 75, 90, 99, 100):
            rank = max(1, math.ceil(q / 100.0 * len(values)))
            assert histogram.percentile(q) == ordered[rank - 1]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_bucket_counts_are_monotone_cumulative(self, values):
        histogram = MetricsRegistry().histogram("h")
        for value in values:
            histogram.observe(value)
        # Cumulative counts over buckets sorted by upper bound never
        # decrease and end at the total count.
        ordered = sorted(
            histogram.buckets.items(),
            key=lambda kv: -math.inf if kv[0] is None else kv[0],
        )
        cumulative = 0
        for _, n in ordered:
            assert n > 0
            cumulative += n
        assert cumulative == histogram.count == len(values)


class TestSnapshotsAndMerge:
    def build(self, offset=0.0):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(2)
        registry.gauge("objective").set(1.0 + offset)
        histogram = registry.histogram("latency")
        for value in (1.0 + offset, 2.0 + offset, 3.0 + offset):
            histogram.observe(value)
        return registry

    def test_snapshot_is_json_roundtrippable(self):
        snapshot = self.build().snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_adds_counters_and_concatenates_values(self):
        merged = merge_snapshots(self.build().snapshot(),
                                 self.build(10.0).snapshot())
        counter = next(c for c in merged["counters"]
                       if c["name"] == "jobs_total")
        assert counter["value"] == 4
        histogram = next(h for h in merged["histograms"]
                         if h["name"] == "latency")
        assert histogram["count"] == 6
        assert histogram["exact"] is True
        assert sorted(histogram["values"]) == [1.0, 2.0, 3.0, 11.0, 12.0, 13.0]
        assert histogram["p50"] == 3.0  # nearest-rank over the merged set

    def test_merge_disjoint_instruments_keeps_both(self):
        left = MetricsRegistry()
        left.counter("only_left_total").inc(1)
        left.histogram("left_hist").observe(1.0)
        right = MetricsRegistry()
        right.counter("only_right_total").inc(2)
        right.histogram("right_hist").observe(8.0)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        names = {c["name"] for c in merged["counters"]}
        assert names == {"only_left_total", "only_right_total"}
        assert {h["name"] for h in merged["histograms"]} == {
            "left_hist", "right_hist",
        }

    def test_merge_gauge_takes_last(self):
        merged = merge_snapshots(self.build(0.0).snapshot(),
                                 self.build(5.0).snapshot())
        gauge = next(g for g in merged["gauges"] if g["name"] == "objective")
        assert gauge["value"] == 6.0

    def test_merge_inexact_input_degrades_to_buckets(self):
        exact = self.build().snapshot()
        inexact = self.build().snapshot()
        for entry in inexact["histograms"]:
            entry["values"] = None
        merged = merge_snapshots(exact, inexact)
        histogram = next(h for h in merged["histograms"]
                         if h["name"] == "latency")
        assert histogram["values"] is None
        assert histogram["exact"] is False
        assert histogram["p99"] == 4.0  # bucket upper bound of (2, 4]

    def test_merge_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            merge_snapshots({"schema": "something/else"})

    def test_write_and_load_json_snapshot(self, tmp_path):
        path = write_snapshot(self.build(), tmp_path / "metrics.json")
        assert load_snapshot(path) == self.build().snapshot()

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError):
            load_snapshot(path)


class TestPrometheus:
    def test_roundtrip_preserves_every_sample(self):
        registry = MetricsRegistry()
        registry.counter("spca_jobs_total", engine="spark").inc(3)
        registry.gauge("spca_em_objective").set(0.25)
        histogram = registry.histogram("spca_job_sim_seconds", job="YtXJob")
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        text = to_prometheus(registry)
        samples = parse_prometheus(text)
        assert samples[("spca_jobs_total", (("engine", "spark"),))] == 3
        assert samples[("spca_em_objective", ())] == 0.25
        assert samples[("spca_job_sim_seconds_count",
                        (("job", "YtXJob"),))] == 4
        assert samples[("spca_job_sim_seconds_sum",
                        (("job", "YtXJob"),))] == 105.0
        # The +Inf bucket always equals the count.
        assert samples[("spca_job_sim_seconds_bucket",
                        (("job", "YtXJob"), ("le", "+Inf")))] == 4

    def test_bucket_lines_are_cumulative_and_sorted(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (0.5, 1.0, 2.0, 4.0, -1.0):
            histogram.observe(value)
        lines = [line for line in to_prometheus(registry).splitlines()
                 if line.startswith("h_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 5
        bounds = [line.split('le="')[1].split('"')[0] for line in lines]
        assert float(bounds[0]) == 0.0  # underflow bucket first
        assert bounds[-1] == "+Inf"

    def test_label_escaping_roundtrips(self):
        registry = MetricsRegistry()
        registry.counter("x_total", path='a"b\\c\nd').inc()
        samples = parse_prometheus(to_prometheus(registry))
        assert samples[("x_total", (("path", 'a"b\\c\nd'),))] == 1

    def test_prom_extension_selects_text_format(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        path = write_snapshot(registry, tmp_path / "metrics.prom")
        assert "# TYPE x_total counter" in path.read_text()

    def test_unparsable_sample_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a sample line at all }{")


class TestProcessWideRegistry:
    def test_default_registry_is_disabled(self):
        registry = get_registry()
        assert not registry.enabled

    def test_collecting_installs_and_restores(self):
        before = get_registry()
        with collecting() as registry:
            assert get_registry() is registry
            assert registry.enabled
            registry.counter("x_total").inc()
        assert get_registry() is before

    def test_collecting_restores_on_error(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("boom")
        assert get_registry() is before

    def test_set_registry_explicit(self):
        before = get_registry()
        mine = MetricsRegistry()
        set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(before)

    def test_exact_limit_default_allows_big_runs(self):
        assert DEFAULT_EXACT_LIMIT >= 65536
